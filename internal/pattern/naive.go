package pattern

import (
	"github.com/activexml/axml/internal/tree"
)

// This file retains the original eager evaluator — the one that
// materialises the complete solution set at every pattern node — exactly
// as it shipped before the streaming rewrite. It serves two purposes:
//
//   - it is the differential-test oracle: the streaming evaluator must
//     produce bit-identical results (same Result slice, same order, same
//     NodesVisited/MemoHits accounting) on every input;
//   - it is the seed baseline of the E13 allocation experiment, so the
//     streamed evaluator's memory reduction is measured against real
//     code, not a remembered number.
//
// It is not used on any production path.

// EvalNaive computes the snapshot result of q on doc with the retained
// eager evaluator. Semantically identical to Eval; kept as the test
// oracle and benchmark baseline.
func EvalNaive(doc *tree.Document, q *Pattern) ([]Result, Stats) {
	ev := newNaiveEvaluator(q)
	sols := ev.matchChildren(q.Root(), rootScope{doc: doc})
	return collectResults(q, sols), Stats{NodesVisited: ev.visited, MemoHits: ev.hits}
}

// EvalForestNaive is EvalNaive over a detached forest, mirroring
// EvalForest.
func EvalForestNaive(forest []*tree.Node, q *Pattern) ([]Result, Stats) {
	ev := newNaiveEvaluator(q)
	sols := ev.matchChildren(q.Root(), rootScope{forest: forest})
	return collectResults(q, sols), Stats{NodesVisited: ev.visited, MemoHits: ev.hits}
}

// MatchedCallsNaive mirrors MatchedCallsStats on the retained evaluator.
func MatchedCallsNaive(doc *tree.Document, q *Pattern, out *Node) ([]*tree.Node, Stats) {
	rs, st := EvalNaive(doc, q)
	return collectCalls(rs, out), st
}

type naiveEvaluator struct {
	q       *Pattern
	memo    map[memoKey]*memoEntry
	fps     map[int]string
	desc    map[*tree.Node][]*tree.Node
	order   map[int][]*Node
	visited int
	hits    int
}

func newNaiveEvaluator(q *Pattern) *naiveEvaluator {
	return &naiveEvaluator{
		q:    q,
		memo: map[memoKey]*memoEntry{},
		fps:  map[int]string{},
		desc: map[*tree.Node][]*tree.Node{},
	}
}

func (ev *naiveEvaluator) fingerprint(v *Node) string {
	if fp, ok := ev.fps[v.ID]; ok {
		return fp
	}
	fp := ev.q.Fingerprint(v)
	ev.fps[v.ID] = fp
	return fp
}

func (ev *naiveEvaluator) match(v *Node, n *tree.Node) []solution {
	key := memoKey{v.ID, n}
	if e, ok := ev.memo[key]; ok {
		ev.hits++
		return e.sols
	}
	e := &memoEntry{} // inserted before computing; trees have no cycles
	ev.memo[key] = e
	e.sols = ev.computeMatch(v, n)
	return e.sols
}

func (ev *naiveEvaluator) computeMatch(v *Node, n *tree.Node) []solution {
	ev.visited++
	switch v.Kind {
	case Or:
		var sols []solution
		for _, alt := range v.Children {
			sols = append(sols, ev.match(alt, n)...)
		}
		return dedupe(sols)
	case Const:
		if !n.IsData() || n.Label != v.Label {
			return nil
		}
	case Star:
		if !n.IsData() {
			return nil
		}
	case Var:
		if !n.IsData() {
			return nil
		}
	case Func:
		if n.Kind != tree.Call {
			return nil
		}
		if v.Label != AnyFunc && v.Label != n.Label {
			return nil
		}
	default:
		return nil // Root never matches a concrete node
	}
	sols := ev.matchChildren(v, rootScope{forest: []*tree.Node{n}})
	if sols == nil {
		return nil
	}
	out := sols[:0:0]
	for _, s := range sols {
		if v.Kind == Var {
			var ok bool
			if s, ok = s.withVar(v.Label, n.Label); !ok {
				continue
			}
		}
		if v.Result {
			s = s.withCap(v.ID, n)
		}
		out = append(out, s)
	}
	return dedupe(out)
}

// matchChildren materialises the full cross-product join of the child
// requirements' solution sets — the eager strategy the streaming
// evaluator replaced.
func (ev *naiveEvaluator) matchChildren(v *Node, scope rootScope) []solution {
	sols := []solution{emptySolution}
	for _, c := range ev.ordered(v) {
		childSols := ev.requirementSolutions(c, v.Kind == Root, scope)
		if len(childSols) == 0 {
			return nil
		}
		sols = joinSolutions(sols, childSols)
		if len(sols) == 0 {
			return nil
		}
	}
	return sols
}

func (ev *naiveEvaluator) ordered(v *Node) []*Node {
	if len(v.Children) < 2 {
		return v.Children
	}
	if cached, ok := ev.order[v.ID]; ok {
		return cached
	}
	out := costOrdered(v)
	if ev.order == nil {
		ev.order = map[int][]*Node{}
	}
	ev.order[v.ID] = out
	return out
}

func (ev *naiveEvaluator) requirementSolutions(c *Node, anchor bool, scope rootScope) []solution {
	var candidates []*tree.Node
	if c.Edge == Child {
		if anchor {
			candidates = scope.childCandidates()
		} else {
			candidates = scope.forest[0].Children
		}
	} else {
		if anchor {
			candidates = descCandidatesEager(scope)
		} else {
			// Several query children commonly share a scope node;
			// enumerate its descendants once per evaluation.
			n := scope.forest[0]
			if cached, ok := ev.desc[n]; ok {
				candidates = cached
			} else {
				candidates = properDescendantsEager(n)
				ev.desc[n] = candidates
			}
		}
	}
	var childSols []solution
	for _, cand := range candidates {
		if cand.Kind == tree.Tuples {
			childSols = append(childSols, tupleSolutions(c, cand, ev.fingerprint)...)
			continue
		}
		childSols = append(childSols, ev.match(c, cand)...)
	}
	return dedupe(childSols)
}

// descCandidatesEager copies every query-visible node of the scope into a
// fresh slice — the per-call allocation the streaming walk eliminated.
func descCandidatesEager(s rootScope) []*tree.Node {
	var out []*tree.Node
	for _, r := range s.childCandidates() {
		r.Walk(func(n *tree.Node) bool {
			out = append(out, n)
			// The parameters of a call are the call's input, not
			// document content: they only become query-visible if the
			// call is invoked and happens to return them. Descendant
			// enumeration therefore stops at call boundaries (pushed
			// results have no element payload either).
			return n.Kind != tree.Call && n.Kind != tree.Tuples
		})
	}
	return out
}

func properDescendantsEager(n *tree.Node) []*tree.Node {
	var out []*tree.Node
	for _, c := range n.Children {
		c.Walk(func(x *tree.Node) bool {
			out = append(out, x)
			return x.Kind != tree.Call && x.Kind != tree.Tuples
		})
	}
	return out
}

func joinSolutions(a, b []solution) []solution {
	var out []solution
	for _, sa := range a {
		for _, sb := range b {
			if m, ok := merge(sa, sb); ok {
				out = append(out, m)
			}
		}
	}
	return dedupe(out)
}
