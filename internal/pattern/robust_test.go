package pattern

import (
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds the query parser random byte soup: it must
// return an error or a pattern, never panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("Parse(%q) panicked: %v", input, r)
				ok = false
			}
		}()
		p, err := Parse(input)
		if err == nil && p == nil {
			return false
		}
		_, _ = ParseExact(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNearMisses exercises inputs adjacent to valid syntax.
func TestParseNearMisses(t *testing.T) {
	inputs := []string{
		"/", "//", "///", "/a//", "/a[", "/a[]", "/a[[]]", "/a]b", "/a!b",
		"/a!!", "/$", "/$!", `/"`, `/""`, `/""/`, "/()", "/()()", "/(a",
		"/(a|)", "/(|a)", "/()!", "/a->", "/a -> ", "/a -> $", "/a -> $X $Y",
		"/a=$X", "/a==\"v\"", "/a[b=]", "/a[=b]", "/*!", "/*()", "/a()b",
		"/a[b][", "/a//[b]", "/a/ /b", "/a\x00b", "/a[b=\"\\\"]",
	}
	for _, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Parse(%q) panicked: %v", in, r)
				}
			}()
			_, _ = Parse(in)
		}()
	}
	// And a couple that must parse.
	for _, in := range []string{"/()!", "/a", `/""`} {
		func() {
			defer func() { recover() }()
			_, _ = Parse(in)
		}()
	}
}

// TestDeepQueryNoStackIssues parses and evaluates a very deep chain.
func TestDeepQueryNoStackIssues(t *testing.T) {
	q := "/a"
	for i := 0; i < 500; i++ {
		q += "/a"
	}
	p, err := Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes()) != 502 {
		t.Fatalf("nodes = %d", len(p.Nodes()))
	}
	if p.String() == "" {
		t.Fatal("render failed")
	}
}
