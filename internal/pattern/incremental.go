package pattern

import (
	"github.com/activexml/axml/internal/tree"
)

// IncrementalEvaluator evaluates one pattern repeatedly over a document
// that changes a little between evaluations — the shape of the engine's
// NFQA loop, where every round replaces a single call by its result and
// then re-asks every relevance query. A fresh evaluator would recompute
// every (query node, document node) match from scratch each round, so the
// cost of a round grows with the document; this evaluator keeps the memo
// table alive across rounds and, on each replacement, evicts only the
// entries the mutation can have changed.
//
// The invalidation rule exploits the locality of the memo: the solutions
// for (v, n) depend only on v's subtree and n's subtree (match and
// matchChildren never look above n). Replacing the subtree rooted at a
// call c therefore invalidates exactly
//
//   - the entries of every node inside the removed subtree (those
//     document nodes are gone), and
//   - the entries of every ancestor of c — the root-to-c spine — whose
//     subtrees now contain the spliced-in result instead of the call.
//
// Every other entry keys a node whose subtree is untouched and stays
// valid. A round's re-evaluation then recomputes O(spine + inserted
// region) matches instead of O(document).
//
// The evaluator is not safe for concurrent use; the engine shards one
// evaluator per relevance query so parallel detection needs no locks.
type IncrementalEvaluator struct {
	q    *Pattern
	ev   *evaluator
	qids []int

	lastVisited int
	lastHits    int
	lastPruned  int
	evictions   int
}

// NewIncremental returns a persistent evaluator for q. The from-scratch
// fallback with identical semantics is MatchedCallsStats (and Eval), which
// builds a throwaway evaluator per call.
func NewIncremental(q *Pattern) *IncrementalEvaluator {
	return NewIncrementalProjected(q, nil)
}

// NewIncrementalProjected is NewIncremental with a document projection:
// every evaluation prunes descendant walks through proj (see
// EvalProjected). The projection predicate depends only on (element
// label, query node), both stable across mutations, so memoised entries
// and pruning decisions stay consistent across rounds. proj == nil
// disables projection.
func NewIncrementalProjected(q *Pattern, proj Projector) *IncrementalEvaluator {
	ids := make([]int, 0, len(q.Nodes()))
	for _, n := range q.Nodes() {
		ids = append(ids, n.ID)
	}
	ev := newEvaluator(q)
	ev.proj = proj
	return &IncrementalEvaluator{q: q, ev: ev, qids: ids}
}

// Pattern returns the query this evaluator serves.
func (ie *IncrementalEvaluator) Pattern() *Pattern { return ie.q }

// MatchedCallsIncremental is the incremental counterpart of
// MatchedCallsStats: it returns the distinct document function nodes
// matched by the result node out, reusing every memoised match that the
// replacements reported through Invalidate cannot have changed. Stats
// cover this call only: NodesVisited counts the matches actually
// recomputed, MemoHits the ones answered from the persistent table.
func (ie *IncrementalEvaluator) MatchedCallsIncremental(doc *tree.Document, out *Node) ([]*tree.Node, Stats) {
	rs, st := ie.EvalIncremental(doc)
	return collectCalls(rs, out), st
}

// EvalIncremental is the incremental counterpart of Eval: it computes the
// pattern's snapshot result over doc, reusing every memoised match that
// the mutations reported through Invalidate cannot have changed. On an
// unchanged document a repeat evaluation is pure memo hits; after a
// mutation it recomputes O(spine + inserted region) matches. Stats cover
// this call only, like MatchedCallsIncremental.
//
// The session layer uses one shared evaluator per (document, query) pair
// to answer repeat queries across tenants without re-walking the whole
// document; core.Evaluate remains the from-scratch oracle with identical
// results.
func (ie *IncrementalEvaluator) EvalIncremental(doc *tree.Document) ([]Result, Stats) {
	sink := newResultSink(ie.q)
	ie.ev.streamChildren(ie.q.Root(), rootScope{doc: doc}, sink.add)
	st := Stats{
		NodesVisited:   ie.ev.visited - ie.lastVisited,
		MemoHits:       ie.ev.hits - ie.lastHits,
		SubtreesPruned: ie.ev.pruned - ie.lastPruned,
	}
	ie.lastVisited, ie.lastHits, ie.lastPruned = ie.ev.visited, ie.ev.hits, ie.ev.pruned
	return sink.out, st
}

// Invalidate reports one document mutation: the subtree rooted at removed
// was detached from parent and an arbitrary forest spliced in its place
// (tree.Document.ReplaceCall). It evicts the memo entries for the removed
// subtree and for the root-to-parent spine; entries for inserted nodes do
// not exist yet, so nothing else needs touching. Call it after every
// mutation, before the next evaluation; missing a call makes subsequent
// results stale.
func (ie *IncrementalEvaluator) Invalidate(parent, removed *tree.Node) {
	if removed != nil {
		removed.Walk(func(n *tree.Node) bool {
			ie.evict(n)
			return true
		})
	}
	for x := parent; x != nil; x = x.Parent {
		ie.evict(x)
	}
}

// Evictions returns the total number of document nodes whose memo entries
// were evicted, for accounting.
func (ie *IncrementalEvaluator) Evictions() int { return ie.evictions }

func (ie *IncrementalEvaluator) evict(n *tree.Node) {
	ie.evictions++
	for _, id := range ie.qids {
		delete(ie.ev.memo, memoKey{qnode: id, dnode: n})
	}
}
