package pattern

import (
	"testing"
)

// FuzzParse checks the parser's two load-bearing contracts on arbitrary
// input (seed corpus: the doc/QUERYLANG.md examples plus testdata/fuzz):
//
//  1. Parse never panics — it returns a pattern or an error.
//  2. Rendering is canonical: String of a parsed pattern re-parses (via
//     ParseExact, the wire entry point), and re-rendering is a fixed
//     point. Pushed-subquery fingerprints rely on exactly this identity.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		// Figure 4 of the paper, as doc/QUERYLANG.md writes it.
		`/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X] -> $X`,
		// The value-join example: same variable in two branches.
		`/hotels/hotel[name=$H][nearby//restaurant[name=$H]] -> $H`,
		// The nightlife example with a descendant edge from the root.
		`//hotel[nearby//bar[music="live"]]/name!`,
		// The extended OR-group and star-function syntax.
		`/hotels/hotel[(rating|())]/nearby/()`,
		// Function nodes and explicit result markers.
		`/shop/items/name()`,
		`/a//b[c=$X][d="v"]/e! -> $X`,
		`/""`,
		`/()!`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input)
		if err != nil {
			return
		}
		canon := p.String()
		q, err := ParseExact(canon)
		if err != nil {
			t.Fatalf("String of a parsed pattern does not re-parse:\n input %q\n canon %q\n err %v",
				input, canon, err)
		}
		if again := q.String(); again != canon {
			t.Fatalf("rendering is not a fixed point:\n input %q\n canon %q\n again %q",
				input, canon, again)
		}
		// The exact parser must agree with itself as well.
		if _, err := ParseExact(input); err == nil {
			e, _ := ParseExact(input)
			ec := e.String()
			e2, err := ParseExact(ec)
			if err != nil {
				t.Fatalf("ParseExact canon does not re-parse: %q -> %q: %v", input, ec, err)
			}
			if e2.String() != ec {
				t.Fatalf("ParseExact rendering not a fixed point: %q -> %q -> %q", input, ec, e2.String())
			}
		}
	})
}
