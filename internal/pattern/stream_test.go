package pattern

import (
	"math/rand"
	"testing"

	"github.com/activexml/axml/internal/tree"
)

// The streaming evaluator must be bit-identical to the retained eager
// evaluator (naive.go): same Result slices in the same order, same
// NodesVisited/MemoHits accounting. These tests replay the incremental
// harness's random documents and mutation sequences through both.

// streamQueries adds result-bearing and joining shapes to the call
// queries of the incremental harness.
var streamQueries = append([]string{
	`/site//item[name=$N] -> $N`,
	`/site/category[label=$L]//item[price=$P] -> $L, $P`,
	`/site//item[(name|price)=$V] -> $V`,
	`/site//item[name=$V][price=$V] -> $V`,
	`//category[//name=$N]//item[//price="alpha"] -> $N`,
}, incrQueries...)

func assertSameEval(t *testing.T, doc *tree.Document, q *Pattern, label string) {
	t.Helper()
	got, gotSt := Eval(doc, q)
	want, wantSt := EvalNaive(doc, q)
	if len(got) != len(want) {
		t.Fatalf("%s: streaming returned %d results, naive %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("%s: result %d differs: streaming %q naive %q", label, i, got[i].Key(), want[i].Key())
		}
	}
	if gotSt.NodesVisited != wantSt.NodesVisited || gotSt.MemoHits != wantSt.MemoHits {
		t.Fatalf("%s: stats diverge: streaming %+v naive %+v", label, gotSt, wantSt)
	}
	if gotSt.SubtreesPruned != 0 {
		t.Fatalf("%s: pruning fired without a projector: %+v", label, gotSt)
	}
}

// TestStreamingMatchesNaiveDifferential runs 50 random documents through
// randomised replacement sequences, comparing the streaming evaluator
// against the retained eager oracle after every mutation.
func TestStreamingMatchesNaiveDifferential(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randCallDoc(rng)
		var queries []*Pattern
		for _, s := range streamQueries {
			q, err := Parse(s)
			if err != nil {
				t.Fatalf("parse %q: %v", s, err)
			}
			queries = append(queries, q)
		}
		for step := 0; ; step++ {
			for qi, q := range queries {
				assertSameEval(t, doc, q, streamQueries[qi])
			}
			calls := doc.Calls()
			if len(calls) == 0 || step >= 4 {
				break
			}
			call := calls[rng.Intn(len(calls))]
			doc.ReplaceCall(call, randIncrForest(rng, 2))
		}
	}
}

// TestStreamingForestMatchesNaive compares the forest entry points, the
// shape service-side push evaluation uses.
func TestStreamingForestMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		forest := randIncrForest(rng, 3)
		for _, s := range []string{`/item/name[$N] -> $N`, `//name[$N] -> $N`, `//item[name=$V][price=$V] -> $V`} {
			q := MustParse(s)
			got, _ := EvalForest(forest, q)
			want, _ := EvalForestNaive(forest, q)
			if len(got) != len(want) {
				t.Fatalf("seed %d %s: streaming %d results, naive %d", seed, s, len(got), len(want))
			}
			for i := range got {
				if got[i].Key() != want[i].Key() {
					t.Fatalf("seed %d %s: result %d differs", seed, s, i)
				}
			}
		}
	}
}

// TestHasEmbeddingMatchesEval checks the short-circuiting boolean path
// against full evaluation on random documents.
func TestHasEmbeddingMatchesEval(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randCallDoc(rng)
		for _, s := range streamQueries {
			q := MustParse(s)
			rs, _ := EvalNaive(doc, q)
			if got := HasEmbedding(doc, q); got != (len(rs) > 0) {
				t.Fatalf("seed %d %s: HasEmbedding=%v, naive found %d results", seed, s, got, len(rs))
			}
		}
	}
}

// TestMatchedCallsPinnedMatchesNaive checks the short-circuiting pinned
// path: for every call in the document, pinning must agree with whether
// the eager evaluator's matched-call set contains it.
func TestMatchedCallsPinnedMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randCallDoc(rng)
		for _, s := range incrQueries {
			q := MustParse(s)
			out := q.FuncNodes()[0]
			matched, _ := MatchedCallsNaive(doc, q, out)
			inSet := map[*tree.Node]bool{}
			for _, c := range matched {
				inSet[c] = true
			}
			for _, c := range doc.Calls() {
				if got := MatchedCallsPinned(doc, q, out, c); got != inSet[c] {
					t.Fatalf("seed %d %s call %d: pinned=%v, naive set membership=%v", seed, s, c.ID, got, inSet[c])
				}
			}
		}
	}
}

// TestHasEmbeddingShortCircuits verifies the boolean path really stops
// early: on a document with many embeddings it must allocate well under
// what a full evaluation does. The query anchors on a descendant axis so
// the candidate walk itself is the dominant cost — that walk must be
// abandoned at the first embedding.
func TestHasEmbeddingShortCircuits(t *testing.T) {
	doc := benchDoc(400)
	q := MustParse(`//restaurant[name=$X] -> $X`)
	full := testing.AllocsPerRun(5, func() { Eval(doc, q) })
	fast := testing.AllocsPerRun(5, func() { HasEmbedding(doc, q) })
	if !HasEmbedding(doc, q) {
		t.Fatal("expected an embedding")
	}
	if fast*4 > full {
		t.Fatalf("HasEmbedding allocates %.0f, full Eval %.0f — expected at least 4x headroom", fast, full)
	}
}
