package pattern

import (
	"github.com/activexml/axml/internal/tree"
)

// ResidualMatcher validates F-guide candidates against the conditions of
// a relevance query that lie outside its linear part — the "NFQ
// filtering" of Section 6.2 of the paper ("the remaining query to
// evaluate checks for the conditions in q_v that don't appear in
// q_v^lin ... starting from the set of function calls returned").
//
// Instead of re-evaluating the whole NFQ per candidate (which would make
// the guide pointless: every candidate would pay a document-wide pass),
// the matcher aligns the query's root→output spine to the candidate's
// concrete ancestor chain and checks each spine node's off-spine branches
// *relative to that ancestor* — so a condition on hotel i's name is only
// searched inside hotel i. Memoisation is shared across candidates of one
// evaluation round, which is what makes batch validation cheap.
type ResidualMatcher struct {
	q   *Pattern
	out *Node
	// spine holds the nodes on the path anchor→out, anchor excluded,
	// out excluded (out itself maps to the candidate call).
	spine []*Node
	ev    *evaluator
}

// NewResidualMatcher prepares a matcher for the query's output node. The
// nodes on the path from the root to out must be data-matching nodes
// (Const, Star or Var), which holds for every generated LPQ and NFQ: the
// ancestors of a function output are plain data nodes by construction.
// It panics otherwise, since that indicates a query not produced by the
// rewrite package.
func NewResidualMatcher(q *Pattern, out *Node) *ResidualMatcher {
	var rev []*Node
	for x := out.Parent; x != nil && x.Kind != Root; x = x.Parent {
		switch x.Kind {
		case Const, Star, Var:
			rev = append(rev, x)
		default:
			panic("pattern: residual matching requires a plain data spine")
		}
	}
	spine := make([]*Node, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		spine = append(spine, rev[i])
	}
	return &ResidualMatcher{q: q, out: out, spine: spine, ev: newEvaluator(q)}
}

// Match reports whether the query has an embedding mapping the output
// node to the target call. Candidates typically come from an F-guide, so
// their ancestor paths already match the linear part; Match nevertheless
// re-verifies labels and edges, making it safe for arbitrary targets.
func (m *ResidualMatcher) Match(doc *tree.Document, target *tree.Node) bool {
	if target.Kind != tree.Call {
		return false
	}
	if m.out.Label != AnyFunc && m.out.Label != target.Label {
		return false
	}
	// Ancestor chain of the target, root element first.
	var anc []*tree.Node
	for x := target.Parent; x != nil; x = x.Parent {
		anc = append(anc, x)
	}
	for i, j := 0, len(anc)-1; i < j; i, j = i+1, j-1 {
		anc[i], anc[j] = anc[j], anc[i]
	}
	// Anchor-level branches other than the spine start are document-wide
	// conditions; check them once against the root scope.
	sols := []solution{emptySolution}
	spineStart := m.out
	if len(m.spine) > 0 {
		spineStart = m.spine[0]
	}
	for _, c := range m.q.Root().Children {
		if c == spineStart {
			continue
		}
		reqSols := m.ev.requirementSolutions(c, true, rootScope{doc: doc})
		if len(reqSols) == 0 {
			return false
		}
		sols = joinSolutions(sols, reqSols)
		if len(sols) == 0 {
			return false
		}
	}
	// The first spine step anchors at the document root: a Child edge
	// pins it to anc[0] (the root element); a Desc edge allows any
	// ancestor.
	return m.align(doc, 0, -1, anc, sols)
}

// align assigns spine[i] to an ancestor position after prevJ, threading
// the joined off-spine solutions; it succeeds when every spine node is
// placed, the output edge constraint holds, and the final solution set is
// non-empty.
func (m *ResidualMatcher) align(doc *tree.Document, i, prevJ int, anc []*tree.Node, sols []solution) bool {
	if i == len(m.spine) {
		// All spine nodes placed; the target (child of anc[len-1]) must
		// satisfy the output node's edge from the spine end at prevJ.
		last := len(anc) - 1
		if m.out.Edge == Child && prevJ != last {
			return false
		}
		if m.out.Edge == Desc && prevJ > last {
			return false
		}
		return len(sols) > 0
	}
	s := m.spine[i]
	lo := prevJ + 1
	hi := lo
	if s.Edge == Desc {
		hi = len(anc) - 1
	}
	for j := lo; j <= hi && j < len(anc); j++ {
		a := anc[j]
		if !spineNodeMatches(s, a) {
			continue
		}
		next := sols
		// The spine node's own variable binding participates in joins.
		if s.Kind == Var {
			next = bindAll(next, s.Label, a.Label)
			if len(next) == 0 {
				continue
			}
		}
		ok := true
		for _, c := range s.Children {
			if i+1 < len(m.spine) && c == m.spine[i+1] {
				continue // the spine continues; handled by recursion
			}
			if c == m.out {
				continue // the output maps to the target itself
			}
			reqSols := m.ev.requirementSolutions(c, false, rootScope{forest: []*tree.Node{a}})
			if len(reqSols) == 0 {
				ok = false
				break
			}
			next = joinSolutions(next, reqSols)
			if len(next) == 0 {
				ok = false
				break
			}
		}
		if ok && m.align(doc, i+1, j, anc, next) {
			return true
		}
	}
	return false
}

func spineNodeMatches(s *Node, a *tree.Node) bool {
	if !a.IsData() {
		return false
	}
	return s.Kind != Const || s.Label == a.Label
}

func bindAll(sols []solution, name, value string) []solution {
	var out []solution
	for _, s := range sols {
		if ns, ok := s.withVar(name, value); ok {
			out = append(out, ns)
		}
	}
	return out
}
