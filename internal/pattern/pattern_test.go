package pattern

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/activexml/axml/internal/tree"
)

// figure4 is the paper's Figure 4 query over the hotels document.
const figure4 = `/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y`

// figure1 builds the document of Figure 1 (one hotel spelled out, plus the
// top-level getHotels call).
func figure1() *tree.Document {
	root := tree.NewElement("hotels")
	h := root.Append(tree.NewElement("hotel"))
	h.Append(tree.NewElement("name")).Append(tree.NewText("Best Western"))
	h.Append(tree.NewElement("address")).Append(tree.NewText("75, 2nd Av."))
	h.Append(tree.NewElement("rating")).Append(tree.NewText("*****"))
	nearby := h.Append(tree.NewElement("nearby"))
	nearby.Append(tree.NewCall("getNearbyRestos", tree.NewText("75, 2nd Av.")))
	nearby.Append(tree.NewCall("getNearbyMuseums", tree.NewText("75, 2nd Av.")))

	h2 := root.Append(tree.NewElement("hotel"))
	h2.Append(tree.NewElement("name")).Append(tree.NewText("Pennsylvania"))
	h2.Append(tree.NewElement("rating")).Append(tree.NewCall("getRating", tree.NewText("Pennsylvania")))
	n2 := h2.Append(tree.NewElement("nearby"))
	n2.Append(tree.NewCall("getNearbyRestos", tree.NewText("13 Penn St.")))

	root.Append(tree.NewCall("getHotels", tree.NewText("NY")))
	return tree.NewDocument(root)
}

// invokeRestos simulates the Figure 3 state: the first getNearbyRestos call
// is replaced by two restaurants, one of them five-star.
func invokeRestos(d *tree.Document) {
	var call *tree.Node
	for _, c := range d.Calls() {
		if c.Label == "getNearbyRestos" {
			call = c
			break
		}
	}
	mk := func(name, addr, rating string) *tree.Node {
		r := tree.NewElement("restaurant")
		r.Append(tree.NewElement("name")).Append(tree.NewText(name))
		r.Append(tree.NewElement("address")).Append(tree.NewText(addr))
		r.Append(tree.NewElement("rating")).Append(tree.NewText(rating))
		return r
	}
	d.ReplaceCall(call, []*tree.Node{
		mk("Jo", "75, 2nd Av.", "***"),
		mk("Mama", "77, 2nd Av.", "*****"),
	})
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		`/hotels`,
		`/hotels/hotel`,
		`//show`,
		`/a/*//b`,
		`/a[b]`,
		`/a[b[c]][d]`,
		`/a["v"]`,
		`/a/$X!`,
		`/a[()]`,
		`/a[getRating()]`,
		`/a[(b|())]`,
		`/a[(b[c]|getF()|"v")]`,
		`/goingout/movies//show[title["The Hours"]]/schedule`,
	}
	for _, in := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		out := p.String()
		p2, err := Parse(out)
		if err != nil {
			t.Errorf("reparse of %q (from %q): %v", out, in, err)
			continue
		}
		if p2.String() != out {
			t.Errorf("canonical form unstable: %q -> %q -> %q", in, out, p2.String())
		}
	}
}

func TestParseSugar(t *testing.T) {
	// name="v" is sugar for name["v"]; name=$X for name[$X].
	a := MustParse(`/h[name="v"][r=$X] -> $X`)
	b := MustParse(`/h[name["v"]][r[$X!]]`)
	if a.String() != b.String() {
		t.Fatalf("sugar mismatch: %q vs %q", a.String(), b.String())
	}
}

func TestParseDefaultResult(t *testing.T) {
	p := MustParse(`/a/b/c`)
	rs := p.ResultNodes()
	if len(rs) != 1 || rs[0].Label != "c" {
		t.Fatalf("default result should be the last spine step, got %v", rs)
	}
	// With an explicit !, the last step is not auto-marked.
	p = MustParse(`/a/b!/c`)
	rs = p.ResultNodes()
	if len(rs) != 1 || rs[0].Label != "b" {
		t.Fatalf("explicit result ignored: %v", rs)
	}
}

func TestParseArrowMarksFirstOccurrence(t *testing.T) {
	p := MustParse(`/a[x=$X][y=$X] -> $X`)
	count := 0
	for _, n := range p.Nodes() {
		if n.Kind == Var && n.Result {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("arrow should mark exactly one occurrence, got %d", count)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		``, `a`, `/`, `/a[`, `/a]`, `/a[b`, `/a ->`, `/a -> $Z`, `/a -> X`,
		`/a"`, `/"unterminated`, `/a[=x]`, `/$`, `/a(`, `/(a|`, `/a=5`,
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestEvalFigure4(t *testing.T) {
	d := figure1()
	q := MustParse(figure4)
	rs, _ := Eval(d, q)
	if len(rs) != 0 {
		t.Fatalf("snapshot result before invocation should be empty, got %v", rs)
	}
	invokeRestos(d)
	rs, _ = Eval(d, q)
	if len(rs) != 1 {
		t.Fatalf("after invocation want 1 result, got %d", len(rs))
	}
	if rs[0].Values["X"] != "Mama" || rs[0].Values["Y"] != "77, 2nd Av." {
		t.Fatalf("wrong bindings: %v", rs[0].Values)
	}
}

func TestEvalChildVsDescendant(t *testing.T) {
	d, _ := tree.Unmarshal([]byte(`<r><a><b><c>1</c></b></a></r>`))
	if !HasEmbedding(d, MustParse(`/r//c`)) {
		t.Error("// should reach depth 3")
	}
	if HasEmbedding(d, MustParse(`/r/c`)) {
		t.Error("/ should not skip levels")
	}
	if !HasEmbedding(d, MustParse(`//c`)) {
		t.Error("leading // should match anywhere")
	}
	if !HasEmbedding(d, MustParse(`/r/a/b/c`)) {
		t.Error("full child path should match")
	}
	if HasEmbedding(d, MustParse(`/x`)) {
		t.Error("/x must check the root element label")
	}
}

func TestEvalStarAndValues(t *testing.T) {
	d, _ := tree.Unmarshal([]byte(`<r><a>v</a><b>w</b></r>`))
	rs, _ := Eval(d, MustParse(`/r/*/$V -> $V`))
	if len(rs) != 2 {
		t.Fatalf("want 2 value bindings, got %v", rs)
	}
	vals := map[string]bool{}
	for _, r := range rs {
		vals[r.Values["V"]] = true
	}
	if !vals["v"] || !vals["w"] {
		t.Fatalf("bindings = %v", vals)
	}
}

func TestEvalValueJoin(t *testing.T) {
	d, _ := tree.Unmarshal([]byte(`<r><a><x>1</x><y>1</y></a><b><x>1</x><y>2</y></b></r>`))
	// Join: x and y must carry the same value.
	q := MustParse(`/r/*[x=$V][y=$V] -> $V`)
	rs, _ := Eval(d, q)
	if len(rs) != 1 || rs[0].Values["V"] != "1" {
		t.Fatalf("join result = %v", rs)
	}
}

func TestEvalResultNodesCaptureDocNodes(t *testing.T) {
	d, _ := tree.Unmarshal([]byte(`<r><a/><a/></r>`))
	q := MustParse(`/r/a`)
	rs, _ := Eval(d, q)
	if len(rs) != 2 {
		t.Fatalf("want 2 node results, got %d", len(rs))
	}
	out := q.ResultNodes()[0]
	if rs[0].Nodes[out.ID] == rs[1].Nodes[out.ID] {
		t.Fatal("distinct doc nodes expected")
	}
}

func TestEvalOrNodes(t *testing.T) {
	d, _ := tree.Unmarshal([]byte(`<r><a><b/></a></r>`))
	// (b|c) under a: satisfied via b.
	if !HasEmbedding(d, MustParse(`/r/a[(b|c)]`)) {
		t.Error("OR should be satisfied by first alternative")
	}
	if !HasEmbedding(d, MustParse(`/r/a[(c|b)]`)) {
		t.Error("OR should be satisfied by second alternative")
	}
	if HasEmbedding(d, MustParse(`/r/a[(c|d)]`)) {
		t.Error("OR with no satisfied alternative must fail")
	}
}

func TestEvalFunctionNodes(t *testing.T) {
	d, _ := tree.Unmarshal([]byte(
		`<r><a><axml:call service="f"/></a><b><axml:call service="g"/></b></r>`))
	// Star function node under a.
	q := MustParse(`/r/a/()`)
	out := q.ResultNodes()[0]
	calls := MatchedCalls(d, q, out)
	if len(calls) != 1 || calls[0].Label != "f" {
		t.Fatalf("star func match = %v", calls)
	}
	// Named function node.
	q = MustParse(`/r/*/g()`)
	out = q.ResultNodes()[0]
	calls = MatchedCalls(d, q, out)
	if len(calls) != 1 || calls[0].Label != "g" {
		t.Fatalf("named func match = %v", calls)
	}
	// Function nodes are not matched by data steps.
	if HasEmbedding(d, MustParse(`/r/a/f`)) {
		t.Error("a data step must not match a call node")
	}
	// And data nodes are not matched by function steps.
	if HasEmbedding(d, MustParse(`/r/b()`)) {
		t.Error("a function step must not match a data node")
	}
}

func TestEvalOrWithFunctionBranch(t *testing.T) {
	// The NFQ shape: rating satisfied either by data or by any call.
	dData, _ := tree.Unmarshal([]byte(`<r><h><rating>5</rating></h></r>`))
	dCall, _ := tree.Unmarshal([]byte(`<r><h><axml:call service="getRating"/></h></r>`))
	dNone, _ := tree.Unmarshal([]byte(`<r><h><other/></h></r>`))
	q := MustParse(`/r/h[(rating|())]`)
	if !HasEmbedding(dData, q) {
		t.Error("data branch should satisfy the OR")
	}
	if !HasEmbedding(dCall, q) {
		t.Error("function branch should satisfy the OR")
	}
	if HasEmbedding(dNone, q) {
		t.Error("neither branch holds, OR must fail")
	}
}

func TestMatchedCallsPinned(t *testing.T) {
	d, _ := tree.Unmarshal([]byte(
		`<r><a><axml:call service="f"/></a><a><axml:call service="f"/></a></r>`))
	q := MustParse(`/r/a/()`)
	out := q.ResultNodes()[0]
	calls := MatchedCalls(d, q, out)
	if len(calls) != 2 {
		t.Fatalf("want 2 candidate calls, got %d", len(calls))
	}
	if !MatchedCallsPinned(d, q, out, calls[0]) {
		t.Error("pinned to a real match should succeed")
	}
	other := d.Calls()[0]
	// Pin to a node that is not retrieved by the query.
	qb := MustParse(`/r/b/()`)
	if MatchedCallsPinned(d, qb, qb.ResultNodes()[0], other) {
		t.Error("pinned to a non-match should fail")
	}
}

func TestEvalForest(t *testing.T) {
	forest, err := tree.UnmarshalForest([]byte(
		`<restaurant><name>Jo</name><rating>***</rating></restaurant>` +
			`<restaurant><name>Mama</name><rating>*****</rating></restaurant>`))
	if err != nil {
		t.Fatal(err)
	}
	q := MustParse(`/restaurant[rating="*****"][name=$X] -> $X`)
	rs, _ := EvalForest(forest, q)
	if len(rs) != 1 || rs[0].Values["X"] != "Mama" {
		t.Fatalf("forest eval = %v", rs)
	}
	// Descendant-edge anchor requirement ranges over all forest nodes.
	q2 := MustParse(`//name/$X -> $X`)
	rs, _ = EvalForest(forest, q2)
	if len(rs) != 2 {
		t.Fatalf("descendant forest eval = %v", rs)
	}
}

func TestEvalTuplesVirtualMatch(t *testing.T) {
	// Build the outer query; its restaurant subtree is the pushed part.
	q := MustParse(figure4)
	var restaurant *Node
	for _, n := range q.Nodes() {
		if n.Kind == Const && n.Label == "restaurant" {
			restaurant = n
		}
	}
	if restaurant == nil {
		t.Fatal("no restaurant node in figure4 query")
	}
	fp := q.Fingerprint(restaurant)

	// Document where the nearby zone contains a pushed-result node
	// instead of materialised restaurants.
	root := tree.NewElement("hotels")
	h := root.Append(tree.NewElement("hotel"))
	h.Append(tree.NewElement("name")).Append(tree.NewText("Best Western"))
	h.Append(tree.NewElement("rating")).Append(tree.NewText("*****"))
	nearby := h.Append(tree.NewElement("nearby"))
	nearby.Append(tree.NewTuples(fp, []tree.Binding{
		{"X": "In Delis", "Y": "2nd Ave."},
		{"X": "The Capital", "Y": "2nd Ave."},
	}))
	d := tree.NewDocument(root)

	rs, _ := Eval(d, q)
	if len(rs) != 2 {
		t.Fatalf("want 2 virtual results, got %v", rs)
	}
	names := map[string]bool{}
	for _, r := range rs {
		names[r.Values["X"]] = true
	}
	if !names["In Delis"] || !names["The Capital"] {
		t.Fatalf("bindings = %v", names)
	}

	// A tuples node with a different fingerprint must not match.
	nearby.Children[0].PushedQuery = "other"
	rs, _ = Eval(d, q)
	if len(rs) != 0 {
		t.Fatalf("fingerprint mismatch must not match, got %v", rs)
	}
}

func TestTuplesJoinWithOuterBindings(t *testing.T) {
	// Variable V occurs both outside and inside the pushed subquery: the
	// tuple value must agree with the outer binding.
	q := MustParse(`/r[tag=$V]/zone/item[val=$V] -> $V`)
	var item *Node
	for _, n := range q.Nodes() {
		if n.Label == "item" {
			item = n
		}
	}
	fp := q.Fingerprint(item)
	root := tree.NewElement("r")
	root.Append(tree.NewElement("tag")).Append(tree.NewText("k1"))
	zone := root.Append(tree.NewElement("zone"))
	zone.Append(tree.NewTuples(fp, []tree.Binding{{"V": "k1"}, {"V": "k2"}}))
	d := tree.NewDocument(root)
	rs, _ := Eval(d, q)
	if len(rs) != 1 || rs[0].Values["V"] != "k1" {
		t.Fatalf("join with pushed tuples = %v", rs)
	}
}

func TestSubAndFingerprint(t *testing.T) {
	q := MustParse(figure4)
	var restaurant *Node
	for _, n := range q.Nodes() {
		if n.Label == "restaurant" {
			restaurant = n
		}
	}
	sub := q.Sub(restaurant)
	s := sub.String()
	if !strings.Contains(s, "restaurant") || !strings.Contains(s, "$X") {
		t.Fatalf("Sub serialisation = %q", s)
	}
	// Sub is independent of the original.
	sub.Root().Children[0].Label = "mutated"
	if strings.Contains(q.String(), "mutated") {
		t.Fatal("Sub must deep-copy")
	}
	// Fingerprint is Sub(v).String().
	var r2 *Node
	for _, n := range q.Nodes() {
		if n.Label == "restaurant" {
			r2 = n
		}
	}
	if q.Fingerprint(r2) != NewPattern(q.Root().clone()).Fingerprint(findByLabel(t, q, "restaurant")) {
		// Same pattern content gives same fingerprint.
		t.Fatal("fingerprint not canonical")
	}
}

func findByLabel(t *testing.T, q *Pattern, label string) *Node {
	t.Helper()
	for _, n := range q.Nodes() {
		if n.Label == label {
			return n
		}
	}
	t.Fatalf("no node labelled %q", label)
	return nil
}

func TestLinearSteps(t *testing.T) {
	q := MustParse(`/hotels/hotel/nearby//restaurant/rating`)
	rating := findByLabel(t, q, "rating")
	steps := q.LinearSteps(rating)
	if len(steps) != 5 {
		t.Fatalf("steps = %v", steps)
	}
	if !steps[3].AnyDepth || steps[3].Label != "restaurant" {
		t.Fatalf("descendant step wrong: %+v", steps[3])
	}
	if steps[4].Label != "rating" || steps[4].AnyDepth {
		t.Fatalf("last step wrong: %+v", steps[4])
	}
	// Star and Var steps become wildcards.
	q2 := MustParse(`/a/*/$V/b`)
	b := findByLabel(t, q2, "b")
	steps = q2.LinearSteps(b)
	if steps[1].Label != "*" || steps[2].Label != "*" {
		t.Fatalf("wildcard steps = %v", steps)
	}
}

func TestVariablesAndFuncNodes(t *testing.T) {
	q := MustParse(`/a[x=$X][y=$Y][()][f()] -> $X, $Y`)
	vars := q.Variables()
	if len(vars) != 2 || vars[0] != "X" || vars[1] != "Y" {
		t.Fatalf("Variables = %v", vars)
	}
	fns := q.FuncNodes()
	if len(fns) != 2 || !fns[0].IsFuncStar() || fns[1].Label != "f" {
		t.Fatalf("FuncNodes = %v", fns)
	}
}

func TestCloneIndependence(t *testing.T) {
	q := MustParse(`/a/b[c]`)
	c := q.Clone()
	c.Node(1).Label = "z"
	if q.Node(1).Label != "a" {
		t.Fatal("Clone shares nodes with the original")
	}
	if len(c.Nodes()) != len(q.Nodes()) {
		t.Fatal("Clone changed the node count")
	}
}

func TestNewPatternPanicsOnNonRoot(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPattern(NewNode(Const, "a", Child))
}

func TestResultKeyDistinguishes(t *testing.T) {
	n1, n2 := tree.NewElement("a"), tree.NewElement("a")
	n1.ID, n2.ID = 1, 2
	r1 := Result{Values: map[string]string{"X": "v"}, Nodes: map[int]*tree.Node{3: n1}}
	r2 := Result{Values: map[string]string{"X": "v"}, Nodes: map[int]*tree.Node{3: n2}}
	if r1.Key() == r2.Key() {
		t.Fatal("keys must distinguish different node captures")
	}
	r3 := Result{Values: map[string]string{"X": "w"}, Nodes: map[int]*tree.Node{3: n1}}
	if r1.Key() == r3.Key() {
		t.Fatal("keys must distinguish different values")
	}
}

// TestCanonicalFormProperty: for random patterns, String∘Parse∘String is
// stable (the canonical form is a fixed point).
func TestCanonicalFormProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := randomPattern(seed)
		// The first Parse may add a default result marker, so canonical
		// stability is checked from the first reparse onward.
		p2, err := Parse(p.String())
		if err != nil {
			t.Logf("parse of %q failed: %v", p.String(), err)
			return false
		}
		s := p2.String()
		p3, err := Parse(s)
		if err != nil {
			t.Logf("reparse of %q failed: %v", s, err)
			return false
		}
		return p3.String() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func randomPattern(seed int64) *Pattern {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 99
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	labels := []string{"a", "b", "hotel", "rating"}
	var build func(depth int, edge EdgeKind) *Node
	build = func(depth int, edge EdgeKind) *Node {
		kind := next(10)
		var n *Node
		switch {
		case kind < 4 || depth <= 0:
			n = NewNode(Const, labels[next(len(labels))], edge)
		case kind < 5:
			n = NewNode(Star, "", edge)
		case kind < 6:
			n = NewNode(Var, "V"+itoa(next(3)), edge)
		case kind < 7:
			if next(2) == 0 {
				n = NewNode(Func, AnyFunc, edge)
			} else {
				n = NewNode(Func, "f"+itoa(next(3)), edge)
			}
			return n // function nodes carry no children
		case kind < 8:
			n = NewNode(Const, "has space "+itoa(next(5)), edge) // quoted form
		default:
			n = NewNode(Or, "", edge)
			for i := 0; i < 2+next(2); i++ {
				n.Add(build(depth-1, edge))
			}
			return n
		}
		if depth > 0 {
			for i := 0; i < next(3); i++ {
				childEdge := Child
				if next(3) == 0 {
					childEdge = Desc
				}
				n.Add(build(depth-1, childEdge))
			}
		}
		return n
	}
	root := NewNode(Root, "", Child)
	edge := Child
	if next(2) == 0 {
		edge = Desc
	}
	root.Add(build(2, edge))
	return NewPattern(root)
}
