// Package pattern implements the tree-pattern query model of Section 2 of
// "Lazy Query Evaluation for Active XML" (SIGMOD 2004): labelled trees with
// constant, variable and star nodes, child and descendant edges, and a set
// of result nodes, capturing the core tree-matching fragment of
// XPath/XQuery. It also implements the paper's *extended* queries — OR
// nodes and function nodes — which the rewriting machinery of Sections 3–5
// uses to retrieve relevant service calls.
//
// The package provides a textual query language (see Parse), a canonical
// serialisation used as the fingerprint of pushed subqueries (String), and
// the embedding evaluator of Definition 1 (Eval and friends).
package pattern

import (
	"fmt"
	"strings"

	"github.com/activexml/axml/internal/regex"
)

// EdgeKind is the kind of the edge connecting a pattern node to its parent.
type EdgeKind uint8

const (
	// Child is a parent-child edge (single line in the paper's figures).
	Child EdgeKind = iota
	// Desc is an ancestor-descendant edge (double line in the figures).
	Desc
)

func (e EdgeKind) String() string {
	if e == Desc {
		return "//"
	}
	return "/"
}

// Kind discriminates the pattern node kinds.
type Kind uint8

const (
	// Root is the virtual anchor above the document root. Every pattern
	// has exactly one Root node, at its top. A Root child reached by a
	// Child edge matches the document root element; one reached by a Desc
	// edge matches any node.
	Root Kind = iota
	// Const matches a data node with exactly the node's label (an element
	// name or a data value — the model does not distinguish).
	Const
	// Star matches any data node.
	Star
	// Var matches any data node and binds the node's label to the
	// variable; all occurrences of a variable must bind the same label.
	Var
	// Or is a choice between its children subtrees: a query with OR nodes
	// denotes the union of the OR-free queries obtained by keeping one
	// child per OR node (Section 2, "Some useful machinery").
	Or
	// Func matches a function node. A label of "*" matches a call to any
	// service, otherwise the service name must match exactly.
	Func
)

// AnyFunc is the label of star function nodes, written "()" in the paper.
const AnyFunc = "*"

// Node is a node of a tree pattern.
type Node struct {
	// Kind of the node.
	Kind Kind
	// Label is the constant label (Const), the variable name (Var), or
	// the service name or AnyFunc (Func). Unused for Root, Star, Or.
	Label string
	// Edge is the kind of the edge from the parent. Meaningless on Root.
	// The children of an Or node inherit the Or's position, so their own
	// Edge is ignored and the Or's Edge applies.
	Edge EdgeKind
	// Result marks the node as a result node of the query.
	Result bool
	// Parent is the parent node (nil for the Root node).
	Parent *Node
	// Children are the ordered children subtrees.
	Children []*Node

	// ID is the index of the node within its pattern, assigned by
	// Pattern.Reindex. It identifies the node in evaluation results.
	ID int
}

// NewNode returns a detached pattern node.
func NewNode(kind Kind, label string, edge EdgeKind) *Node {
	return &Node{Kind: kind, Label: label, Edge: edge}
}

// Add attaches child as the last child of n and returns child.
func (n *Node) Add(child *Node) *Node {
	child.Parent = n
	n.Children = append(n.Children, child)
	return child
}

// clone deep-copies the subtree rooted at n; the copy is detached.
func (n *Node) clone() *Node {
	c := &Node{Kind: n.Kind, Label: n.Label, Edge: n.Edge, Result: n.Result}
	for _, ch := range n.Children {
		c.Add(ch.clone())
	}
	return c
}

// IsFuncStar reports whether the node is a star function node.
func (n *Node) IsFuncStar() bool { return n.Kind == Func && n.Label == AnyFunc }

// Pattern is a tree-pattern query: a Root-anchored node tree plus the
// bookkeeping to address nodes by ID. Obtain one with Parse or NewPattern
// and call Reindex after structural modifications.
type Pattern struct {
	root  *Node
	nodes []*Node
}

// NewPattern wraps a Root node into a Pattern and indexes it. It panics if
// root is not of Kind Root: patterns are always anchored.
func NewPattern(root *Node) *Pattern {
	if root.Kind != Root {
		panic("pattern: NewPattern requires a Root node")
	}
	p := &Pattern{root: root}
	p.Reindex()
	return p
}

// Root returns the anchor node of the pattern.
func (p *Pattern) Root() *Node { return p.root }

// Nodes returns all nodes of the pattern in pre-order; the slice index of
// each node equals its ID. The slice must not be modified.
func (p *Pattern) Nodes() []*Node { return p.nodes }

// Node returns the node with the given ID.
func (p *Pattern) Node(id int) *Node { return p.nodes[id] }

// Reindex reassigns node IDs after a structural modification.
func (p *Pattern) Reindex() {
	p.nodes = p.nodes[:0]
	var walk func(n *Node)
	walk = func(n *Node) {
		n.ID = len(p.nodes)
		p.nodes = append(p.nodes, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.root)
}

// Clone returns an independent deep copy of the pattern.
func (p *Pattern) Clone() *Pattern {
	return NewPattern(p.root.clone())
}

// ResultNodes returns the result nodes of the pattern, in pre-order.
func (p *Pattern) ResultNodes() []*Node {
	var out []*Node
	for _, n := range p.nodes {
		if n.Result {
			out = append(out, n)
		}
	}
	return out
}

// Variables returns the distinct variable names used by the pattern, in
// first-occurrence order.
func (p *Pattern) Variables() []string {
	seen := map[string]bool{}
	var out []string
	for _, n := range p.nodes {
		if n.Kind == Var && !seen[n.Label] {
			seen[n.Label] = true
			out = append(out, n.Label)
		}
	}
	return out
}

// FuncNodes returns the function nodes of the pattern, in pre-order.
func (p *Pattern) FuncNodes() []*Node {
	var out []*Node
	for _, n := range p.nodes {
		if n.Kind == Func {
			out = append(out, n)
		}
	}
	return out
}

// Sub returns a new pattern consisting of the subtree rooted at v (which
// must belong to p), re-anchored: the subquery's root keeps v's incoming
// edge kind below a fresh anchor. This is the sub_v of Section 5 of the
// paper, and the subquery pushed over calls retrieved for v (Section 7).
func (p *Pattern) Sub(v *Node) *Pattern {
	root := NewNode(Root, "", Child)
	c := v.clone()
	root.Add(c)
	return NewPattern(root)
}

// LinearSteps returns the linear path from the pattern root down to v
// (inclusive) as regex path steps: the lin part used by the influence
// analysis of Section 4.2 (there, v itself is excluded — pass v.Parent).
// Star and Var nodes contribute wildcard steps. It panics on Or and Func
// nodes, which never occur on the linear part of an NFQ.
func (p *Pattern) LinearSteps(v *Node) []regex.PathStep {
	var rev []*Node
	for x := v; x != nil && x.Kind != Root; x = x.Parent {
		rev = append(rev, x)
	}
	steps := make([]regex.PathStep, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		n := rev[i]
		var label string
		switch n.Kind {
		case Const:
			label = n.Label
		case Star, Var:
			label = regex.Any
		default:
			panic(fmt.Sprintf("pattern: LinearSteps through %v node", n.Kind))
		}
		steps = append(steps, regex.PathStep{Label: label, AnyDepth: n.Edge == Desc})
	}
	return steps
}

// String renders the pattern in the canonical textual form accepted by
// Parse: every child is rendered as a bracketed branch, result nodes carry
// a "!" suffix, OR nodes render as (alt1|alt2), function nodes as name()
// or (). The canonical form is used as the fingerprint of pushed
// subqueries, so it is deterministic.
func (p *Pattern) String() string {
	var sb strings.Builder
	for _, c := range p.root.Children {
		sb.WriteString(c.Edge.String())
		writeStep(&sb, c, true)
	}
	return sb.String()
}

// writeStep renders one step. When allowSpine is true (the grammar allows
// a /tail here, i.e. everywhere except inside OR alternatives), the last
// child is rendered as a spine continuation and the others as bracketed
// predicates; otherwise every child is a predicate.
func writeStep(sb *strings.Builder, n *Node, allowSpine bool) {
	switch n.Kind {
	case Const:
		if isName(n.Label) {
			sb.WriteString(n.Label)
		} else {
			quoteValue(sb, n.Label)
		}
	case Star:
		sb.WriteString("*")
	case Var:
		sb.WriteString("$" + n.Label)
	case Func:
		if n.Label == AnyFunc {
			sb.WriteString("()")
		} else {
			sb.WriteString(n.Label + "()")
		}
	case Or:
		sb.WriteString("(")
		for i, alt := range n.Children {
			if i > 0 {
				sb.WriteString("|")
			}
			writeStep(sb, alt, false)
		}
		sb.WriteString(")")
		if n.Result {
			sb.WriteString("!")
		}
		return
	default:
		sb.WriteString("#root")
	}
	if n.Result {
		sb.WriteString("!")
	}
	last := len(n.Children) - 1
	for i, c := range n.Children {
		if allowSpine && i == last {
			sb.WriteString(c.Edge.String())
			writeStep(sb, c, true)
			continue
		}
		sb.WriteString("[")
		if c.Edge == Desc {
			sb.WriteString("//")
		}
		writeStep(sb, c, true)
		sb.WriteString("]")
	}
}

// quoteValue renders a data value in the parser's own quoting syntax:
// only '"' and '\' are escaped (with a backslash), every other byte is
// literal. Go-style %q escaping would not survive the round trip — the
// parser reads \x as a literal x — and the canonical form is a byte-exact
// fingerprint, so the two sides must share one escaping convention.
func quoteValue(sb *strings.Builder, s string) {
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '"' || c == '\\' {
			sb.WriteByte('\\')
		}
		sb.WriteByte(c)
	}
	sb.WriteByte('"')
}

// isName reports whether s is safe to render unquoted: it must lex as a
// name, i.e. match the parser's isNameStart/isNameChar exactly (a leading
// '-' or digit would not re-parse as a name).
func isName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		start := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if i == 0 && !start {
			return false
		}
		if !start && c != '-' && !(c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}

// Fingerprint returns the canonical serialisation of the subquery rooted
// at v, used to tag pushed-call results (tree.Node.PushedQuery).
func (p *Pattern) Fingerprint(v *Node) string {
	return p.Sub(v).String()
}
