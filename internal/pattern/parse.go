package pattern

import (
	"fmt"
	"strings"
)

// Parse reads a tree-pattern query from its textual form. The language is
// an XPath-like syntax restricted to the paper's fragment:
//
//	/hotels/hotel[name="Best Western"][rating="*****"]
//	       /nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y
//
// Grammar, informally:
//
//   - Steps are separated by "/" (child edge) or "//" (descendant edge).
//   - A step is an element name, a quoted data value, "*" (any data
//     node), "$X" (variable), "name()" (function node), "()" (star
//     function node), or an OR group "(alt|alt|...)" whose alternatives
//     are steps with optional predicates.
//   - Predicates "[...]" attach extra branches to a step. Inside a
//     predicate, a leading "//" makes the first step a descendant; the
//     shorthand "name=value" abbreviates "name/value" where value is a
//     quoted string or a variable.
//   - "-> $X, $Y" after the path marks those variables as result nodes.
//     Alternatively any step may carry a "!" suffix to mark it as a
//     result node. If no result is marked, the last step of the main
//     path is the result node.
//
// Variables with the same name denote a value join (Definition 1).
func Parse(input string) (*Pattern, error) {
	return parse(input, true)
}

// ParseExact is Parse without the default-result convenience: a query
// with no explicit result markers stays result-free. Wire protocols use
// it so that String∘ParseExact is the identity on canonical forms —
// pushed-subquery fingerprints must survive a round trip verbatim.
func ParseExact(input string) (*Pattern, error) {
	return parse(input, false)
}

func parse(input string, defaultResult bool) (*Pattern, error) {
	p := &qparser{in: input}
	root := NewNode(Root, "", Child)
	last, err := p.parseChain(root, true)
	if err != nil {
		return nil, err
	}
	p.skip()
	explicit := false
	if p.has("->") {
		explicit = true
		for {
			p.skip()
			if p.peek() != '$' {
				return nil, p.errf("expected $variable after ->")
			}
			p.pos++
			name, err := p.name()
			if err != nil {
				return nil, err
			}
			if !markVariable(root, name) {
				return nil, fmt.Errorf("pattern: result variable $%s does not occur in the query", name)
			}
			p.skip()
			if p.peek() != ',' {
				break
			}
			p.pos++
		}
	}
	p.skip()
	if p.pos != len(p.in) {
		return nil, p.errf("trailing input")
	}
	if defaultResult && !explicit && !anyResult(root) {
		if last == nil {
			return nil, fmt.Errorf("pattern: empty query")
		}
		last.Result = true
	}
	return NewPattern(root), nil
}

// MustParse is Parse panicking on error, for tests and literals.
func MustParse(input string) *Pattern {
	p, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return p
}

func markVariable(n *Node, name string) bool {
	if n.Kind == Var && n.Label == name {
		n.Result = true
		return true
	}
	for _, c := range n.Children {
		if markVariable(c, name) {
			return true
		}
	}
	return false
}

func anyResult(n *Node) bool {
	if n.Result {
		return true
	}
	for _, c := range n.Children {
		if anyResult(c) {
			return true
		}
	}
	return false
}

type qparser struct {
	in  string
	pos int
}

func (p *qparser) skip() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t' || p.in[p.pos] == '\n') {
		p.pos++
	}
}

func (p *qparser) peek() byte {
	if p.pos < len(p.in) {
		return p.in[p.pos]
	}
	return 0
}

func (p *qparser) has(s string) bool {
	p.skip()
	if strings.HasPrefix(p.in[p.pos:], s) {
		p.pos += len(s)
		return true
	}
	return false
}

func (p *qparser) errf(format string, args ...any) error {
	return fmt.Errorf("pattern: %s at offset %d in %q", fmt.Sprintf(format, args...), p.pos, p.in)
}

// parseChain parses a /step/step... chain attached under parent and
// returns the deepest step parsed. At the top level the chain must start
// with "/" or "//"; inside predicates a bare first step means child edge.
func (p *qparser) parseChain(parent *Node, topLevel bool) (*Node, error) {
	cur := parent
	first := true
	for {
		p.skip()
		var edge EdgeKind
		switch {
		case p.has("//"):
			edge = Desc
		case p.has("/"):
			edge = Child
		case first && !topLevel:
			edge = Child
		default:
			if first {
				return nil, p.errf("query must start with / or //")
			}
			return cur, nil
		}
		n, err := p.parseStep(edge)
		if err != nil {
			return nil, err
		}
		cur.Add(n)
		cur = n
		first = false
		// The "=value" shorthand closes the chain.
		p.skip()
		if p.peek() == '=' {
			p.pos++
			v, err := p.parseValueNode()
			if err != nil {
				return nil, err
			}
			cur.Add(v)
			return v, nil
		}
	}
}

// parseStep parses one step: atom, optional "!", predicates.
func (p *qparser) parseStep(edge EdgeKind) (*Node, error) {
	n, err := p.parseAtom(edge)
	if err != nil {
		return nil, err
	}
	if p.peek() == '!' {
		p.pos++
		n.Result = true
	}
	for {
		p.skip()
		if p.peek() != '[' {
			return n, nil
		}
		p.pos++
		if _, err := p.parseChain(n, false); err != nil {
			return nil, err
		}
		p.skip()
		if p.peek() != ']' {
			return nil, p.errf("expected ]")
		}
		p.pos++
	}
}

func (p *qparser) parseAtom(edge EdgeKind) (*Node, error) {
	p.skip()
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		p.skip()
		if p.peek() == ')' { // "()" — star function node
			p.pos++
			return NewNode(Func, AnyFunc, edge), nil
		}
		// OR group.
		or := NewNode(Or, "", edge)
		for {
			alt, err := p.parseStep(edge)
			if err != nil {
				return nil, err
			}
			or.Add(alt)
			p.skip()
			if p.peek() == '|' {
				p.pos++
				continue
			}
			break
		}
		if p.peek() != ')' {
			return nil, p.errf("expected ) closing OR group")
		}
		p.pos++
		if len(or.Children) == 1 {
			// A single-alternative OR is the alternative itself, with
			// the group's edge.
			only := or.Children[0]
			only.Parent = nil
			only.Edge = edge
			return only, nil
		}
		return or, nil
	case c == '*':
		p.pos++
		return NewNode(Star, "", edge), nil
	case c == '$':
		p.pos++
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		return NewNode(Var, name, edge), nil
	case c == '"':
		s, err := p.quoted()
		if err != nil {
			return nil, err
		}
		return NewNode(Const, s, edge), nil
	case isNameStart(c):
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		if p.has("()") {
			return NewNode(Func, name, edge), nil
		}
		return NewNode(Const, name, edge), nil
	default:
		return nil, p.errf("unexpected byte %q", c)
	}
}

// parseValueNode parses the right-hand side of the "=value" shorthand: a
// quoted string or a variable, attached as a child-edge node.
func (p *qparser) parseValueNode() (*Node, error) {
	p.skip()
	switch c := p.peek(); {
	case c == '"':
		s, err := p.quoted()
		if err != nil {
			return nil, err
		}
		n := NewNode(Const, s, Child)
		if p.peek() == '!' {
			p.pos++
			n.Result = true
		}
		return n, nil
	case c == '$':
		p.pos++
		name, err := p.name()
		if err != nil {
			return nil, err
		}
		n := NewNode(Var, name, Child)
		if p.peek() == '!' {
			p.pos++
			n.Result = true
		}
		return n, nil
	default:
		return nil, p.errf("expected quoted value or $variable after =")
	}
}

func (p *qparser) name() (string, error) {
	start := p.pos
	if p.pos >= len(p.in) || !isNameStart(p.in[p.pos]) {
		return "", p.errf("expected a name")
	}
	for p.pos < len(p.in) && isNameChar(p.in[p.pos]) {
		p.pos++
	}
	return p.in[start:p.pos], nil
}

func (p *qparser) quoted() (string, error) {
	if p.peek() != '"' {
		return "", p.errf("expected opening quote")
	}
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch c {
		case '"':
			p.pos++
			return sb.String(), nil
		case '\\':
			p.pos++
			if p.pos >= len(p.in) {
				return "", p.errf("dangling escape")
			}
			sb.WriteByte(p.in[p.pos])
			p.pos++
		default:
			sb.WriteByte(c)
			p.pos++
		}
	}
	return "", p.errf("unterminated string")
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || (c >= '0' && c <= '9')
}
