package pattern

import (
	"sort"
	"strings"

	"github.com/activexml/axml/internal/tree"
)

// Result is one element of the snapshot result of a query (Definition 1):
// the restriction of an embedding to the result nodes.
type Result struct {
	// Values holds the labels bound to result *variable* nodes, keyed by
	// variable name. A variable matched through a pushed-call tuple
	// (Section 7) appears here even though no document node exists for it.
	Values map[string]string
	// Nodes holds the document nodes matched by non-variable result nodes
	// (and by variable result nodes matched against concrete nodes),
	// keyed by the pattern node ID.
	Nodes map[int]*tree.Node
}

// Key returns a canonical identity for the result, used for
// deduplication: document node IDs for node captures and name=value pairs
// for variable bindings.
func (r Result) Key() string {
	return canonicalKey(r.Values, func(yield func(int, uint64)) {
		for id, n := range r.Nodes {
			yield(id, n.ID)
		}
	})
}

// canonicalKey renders variable bindings and (pattern ID, doc ID) node
// captures deterministically into one presized buffer: sorted "$k=v"
// pairs, then sorted "id@docID" pairs. It is the hot path of every
// deduplication, so it avoids the part-slice/sort.Strings/Join churn of
// the naive rendering.
func canonicalKey(vars map[string]string, caps func(yield func(int, uint64))) string {
	names := make([]string, 0, 8)
	size := 0
	for k, v := range vars {
		names = append(names, k)
		size += len(k) + len(v) + 3
	}
	sort.Strings(names)
	type cap struct {
		id  int
		doc uint64
	}
	ids := make([]cap, 0, 8)
	caps(func(id int, doc uint64) {
		ids = append(ids, cap{id, doc})
		size += 44
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i].id < ids[j].id })
	var sb strings.Builder
	sb.Grow(size)
	for i, k := range names {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteByte('$')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(vars[k])
	}
	var buf [20]byte
	for i, c := range ids {
		if i > 0 || len(names) > 0 {
			sb.WriteByte(';')
		}
		sb.Write(appendUint(buf[:0], uint64(c.id)))
		sb.WriteByte('@')
		sb.Write(appendUint(buf[:0], c.doc))
	}
	return sb.String()
}

// appendUint appends the decimal rendering of v to dst without
// allocating.
func appendUint(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var b [20]byte
	pos := len(b)
	for v > 0 {
		pos--
		b[pos] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, b[pos:]...)
}

func itoa(i int) string {
	if i < 0 {
		return "-" + itoa(-i)
	}
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

// Stats reports the work done by an evaluation, for the experiments.
type Stats struct {
	// NodesVisited counts (query node, document node) match attempts
	// actually computed (memo misses).
	NodesVisited int
	// MemoHits counts match attempts answered from the memo table
	// without recomputation. For a one-shot evaluation these are the
	// hits within the single pass; for an IncrementalEvaluator they
	// include reuse across rounds — the work the incremental engine
	// avoided.
	MemoHits int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.NodesVisited += other.NodesVisited
	s.MemoHits += other.MemoHits
}

// Eval computes the snapshot result of q on doc: one Result per distinct
// restriction of an embedding to the result nodes. The second return value
// reports evaluation effort.
func Eval(doc *tree.Document, q *Pattern) ([]Result, Stats) {
	ev := newEvaluator(q)
	sols := ev.matchChildren(q.Root(), rootScope{doc: doc})
	return ev.finish(sols), Stats{NodesVisited: ev.visited, MemoHits: ev.hits}
}

// EvalForest computes the snapshot result of q over a forest of detached
// trees, as a push-capable service does over its result (Section 7): the
// pattern's anchor children match forest roots (child edge) or any forest
// node (descendant edge).
func EvalForest(forest []*tree.Node, q *Pattern) ([]Result, Stats) {
	ev := newEvaluator(q)
	sols := ev.matchChildren(q.Root(), rootScope{forest: forest})
	return ev.finish(sols), Stats{NodesVisited: ev.visited, MemoHits: ev.hits}
}

// HasEmbedding reports whether q has at least one embedding in doc.
func HasEmbedding(doc *tree.Document, q *Pattern) bool {
	rs, _ := Eval(doc, q)
	return len(rs) > 0
}

// MatchedCalls evaluates an extended query whose result node out is a
// function node and returns the distinct document function nodes matched
// by it, in document-order-independent but deterministic (ID) order. This
// is how LPQs and NFQs retrieve candidate relevant calls (Section 3).
func MatchedCalls(doc *tree.Document, q *Pattern, out *Node) []*tree.Node {
	calls, _ := MatchedCallsStats(doc, q, out)
	return calls
}

// MatchedCallsStats is MatchedCalls reporting the evaluation effort, for
// the engine's accounting.
func MatchedCallsStats(doc *tree.Document, q *Pattern, out *Node) ([]*tree.Node, Stats) {
	rs, st := Eval(doc, q)
	return collectCalls(rs, out), st
}

// MatchedCallsPinned is MatchedCalls restricted to embeddings that map the
// node pin to the document node target. The F-guide filtering of Section
// 6.2 uses it to validate one candidate call at a time.
func MatchedCallsPinned(doc *tree.Document, q *Pattern, out *Node, target *tree.Node) bool {
	ev := newEvaluator(q)
	ev.pinID, ev.pinTarget = out.ID, target
	sols := ev.matchChildren(q.Root(), rootScope{doc: doc})
	for _, s := range sols {
		if s.caps[out.ID] == target {
			return true
		}
	}
	return false
}

func collectCalls(rs []Result, out *Node) []*tree.Node {
	seen := map[*tree.Node]bool{}
	var calls []*tree.Node
	for _, r := range rs {
		if n := r.Nodes[out.ID]; n != nil && !seen[n] {
			seen[n] = true
			calls = append(calls, n)
		}
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i].ID < calls[j].ID })
	return calls
}

// rootScope tells the evaluator what the anchor's children range over:
// either a document (child edge → the root element; descendant edge → any
// node) or a detached forest (child edge → the roots; descendant edge →
// any forest node).
type rootScope struct {
	doc    *tree.Document
	forest []*tree.Node
}

func (s rootScope) childCandidates() []*tree.Node {
	if s.doc != nil {
		return []*tree.Node{s.doc.Root}
	}
	return s.forest
}

func (s rootScope) descCandidates() []*tree.Node {
	var out []*tree.Node
	for _, r := range s.childCandidates() {
		r.Walk(func(n *tree.Node) bool {
			out = append(out, n)
			// The parameters of a call are the call's input, not
			// document content: they only become query-visible if the
			// call is invoked and happens to return them. Descendant
			// enumeration therefore stops at call boundaries (pushed
			// results have no element payload either).
			return n.Kind != tree.Call && n.Kind != tree.Tuples
		})
	}
	return out
}

// solution is one partial embedding: consistent variable bindings plus
// captured result nodes.
type solution struct {
	vars map[string]string
	caps map[int]*tree.Node
}

var emptySolution = solution{}

func (s solution) withVar(name, value string) (solution, bool) {
	if old, ok := s.vars[name]; ok {
		return s, old == value
	}
	nv := make(map[string]string, len(s.vars)+1)
	for k, v := range s.vars {
		nv[k] = v
	}
	nv[name] = value
	return solution{vars: nv, caps: s.caps}, true
}

func (s solution) withCap(id int, n *tree.Node) solution {
	nc := make(map[int]*tree.Node, len(s.caps)+1)
	for k, v := range s.caps {
		nc[k] = v
	}
	nc[id] = n
	return solution{vars: s.vars, caps: nc}
}

// merge combines two solutions if their variable bindings agree.
// Solutions are immutable, so the empty-side fast paths may share the
// other side's maps.
func merge(a, b solution) (solution, bool) {
	if len(a.vars) == 0 && len(a.caps) == 0 {
		return b, true
	}
	if len(b.vars) == 0 && len(b.caps) == 0 {
		return a, true
	}
	for k, v := range b.vars {
		if old, ok := a.vars[k]; ok && old != v {
			return solution{}, false
		}
	}
	out := a
	if len(b.vars) > 0 {
		out.vars = make(map[string]string, len(a.vars)+len(b.vars))
		for k, v := range a.vars {
			out.vars[k] = v
		}
		for k, v := range b.vars {
			out.vars[k] = v
		}
	}
	if len(b.caps) > 0 {
		out.caps = make(map[int]*tree.Node, len(a.caps)+len(b.caps))
		for k, v := range a.caps {
			out.caps[k] = v
		}
		for k, v := range b.caps {
			out.caps[k] = v
		}
	}
	return out, true
}

func (s solution) key() string {
	return canonicalKey(s.vars, func(yield func(int, uint64)) {
		for id, n := range s.caps {
			yield(id, n.ID)
		}
	})
}

func dedupe(sols []solution) []solution {
	if len(sols) < 2 {
		return sols
	}
	seen := make(map[string]bool, len(sols))
	out := sols[:0]
	for _, s := range sols {
		k := s.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

type memoKey struct {
	qnode int
	dnode *tree.Node
}

// memoEntry distinguishes "computed, no solutions" from "not computed".
type memoEntry struct {
	sols []solution
}

type evaluator struct {
	q       *Pattern
	memo    map[memoKey]*memoEntry
	fps     map[int]string // query node ID → pushed-subquery fingerprint
	desc    map[*tree.Node][]*tree.Node
	order   map[int][]*Node // query node ID → cost-ordered children
	visited int
	hits    int

	// Pinning restricts embeddings to those mapping query node pinID to
	// pinTarget; used by MatchedCallsPinned. pinTarget == nil disables it.
	pinID     int
	pinTarget *tree.Node
}

func newEvaluator(q *Pattern) *evaluator {
	return &evaluator{
		q:    q,
		memo: map[memoKey]*memoEntry{},
		fps:  map[int]string{},
		desc: map[*tree.Node][]*tree.Node{},
	}
}

func (ev *evaluator) finish(sols []solution) []Result {
	resultVars := map[string]bool{}
	resultNodes := map[int]bool{}
	for _, n := range ev.q.ResultNodes() {
		if n.Kind == Var {
			resultVars[n.Label] = true
		}
		resultNodes[n.ID] = true
	}
	seen := map[string]bool{}
	var out []Result
	for _, s := range sols {
		r := Result{Values: map[string]string{}, Nodes: map[int]*tree.Node{}}
		for k, v := range s.vars {
			if resultVars[k] {
				r.Values[k] = v
			}
		}
		for id, n := range s.caps {
			if resultNodes[id] {
				r.Nodes[id] = n
			}
		}
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// fingerprint returns (and caches) the canonical form of the subquery
// rooted at query node v, for matching pushed-result tuples.
func (ev *evaluator) fingerprint(v *Node) string {
	if fp, ok := ev.fps[v.ID]; ok {
		return fp
	}
	fp := ev.q.Fingerprint(v)
	ev.fps[v.ID] = fp
	return fp
}

// match returns the solutions for embedding the query subtree rooted at v
// with v mapped to doc node n. Results are memoised: they only depend on
// (v, n).
func (ev *evaluator) match(v *Node, n *tree.Node) []solution {
	key := memoKey{v.ID, n}
	if e, ok := ev.memo[key]; ok {
		ev.hits++
		return e.sols
	}
	e := &memoEntry{} // inserted before computing; trees have no cycles
	ev.memo[key] = e
	e.sols = ev.computeMatch(v, n)
	return e.sols
}

func (ev *evaluator) computeMatch(v *Node, n *tree.Node) []solution {
	ev.visited++
	if ev.pinTarget != nil && v.ID == ev.pinID && n != ev.pinTarget {
		return nil
	}
	switch v.Kind {
	case Or:
		// The chosen alternative takes the OR's position.
		var sols []solution
		for _, alt := range v.Children {
			sols = append(sols, ev.match(alt, n)...)
		}
		return dedupe(sols)
	case Const:
		if !n.IsData() || n.Label != v.Label {
			return nil
		}
	case Star:
		if !n.IsData() {
			return nil
		}
	case Var:
		if !n.IsData() {
			return nil
		}
	case Func:
		if n.Kind != tree.Call {
			return nil
		}
		if v.Label != AnyFunc && v.Label != n.Label {
			return nil
		}
	default:
		return nil // Root never matches a concrete node
	}
	sols := ev.matchChildren(v, rootScope{forest: []*tree.Node{n}})
	if sols == nil {
		return nil
	}
	// Extend with v's own contribution.
	out := sols[:0:0]
	for _, s := range sols {
		if v.Kind == Var {
			var ok bool
			if s, ok = s.withVar(v.Label, n.Label); !ok {
				continue
			}
		}
		if v.Result {
			s = s.withCap(v.ID, n)
		}
		out = append(out, s)
	}
	return dedupe(out)
}

// matchChildren embeds every child requirement of v, where v itself is
// already mapped. The scope provides the candidate nodes: for a concrete
// node it is that node's subtree; for the pattern anchor it is the
// document root or forest.
//
// For an anchor scope, candidates for a Child-edge requirement are the
// scope's roots; for a concrete node they are its children. Descendant
// requirements range over proper descendants (or all forest nodes for the
// anchor).
func (ev *evaluator) matchChildren(v *Node, scope rootScope) []solution {
	sols := []solution{emptySolution}
	for _, c := range ev.ordered(v) {
		childSols := ev.requirementSolutions(c, v.Kind == Root, scope)
		if len(childSols) == 0 {
			return nil
		}
		sols = joinSolutions(sols, childSols)
		if len(sols) == 0 {
			return nil
		}
	}
	return sols
}

// ordered returns v's children cheapest-first, so a failing condition is
// found before expensive descendant scans run. Joins are commutative and
// solutions are canonically deduplicated, so the order cannot change the
// result set. The ordering is computed once per query node and cached.
func (ev *evaluator) ordered(v *Node) []*Node {
	if len(v.Children) < 2 {
		return v.Children
	}
	if cached, ok := ev.order[v.ID]; ok {
		return cached
	}
	out := append([]*Node(nil), v.Children...)
	cost := func(n *Node) int {
		c := subtreeSize(n)
		if n.Edge == Desc {
			c *= 8 // a descendant scan touches the whole subtree
		}
		return c
	}
	sort.SliceStable(out, func(i, j int) bool { return cost(out[i]) < cost(out[j]) })
	if ev.order == nil {
		ev.order = map[int][]*Node{}
	}
	ev.order[v.ID] = out
	return out
}

func subtreeSize(n *Node) int {
	s := 1
	for _, c := range n.Children {
		s += subtreeSize(c)
	}
	return s
}

// requirementSolutions embeds a single child requirement c within the
// scope: candidates are the scope's children or descendants according to
// c's edge, with pushed-result nodes contributing virtual matches.
func (ev *evaluator) requirementSolutions(c *Node, anchor bool, scope rootScope) []solution {
	var candidates []*tree.Node
	if c.Edge == Child {
		if anchor {
			candidates = scope.childCandidates()
		} else {
			candidates = scope.forest[0].Children
		}
	} else {
		if anchor {
			candidates = scope.descCandidates()
		} else {
			// Several query children commonly share a scope node;
			// enumerate its descendants once per evaluation.
			n := scope.forest[0]
			if cached, ok := ev.desc[n]; ok {
				candidates = cached
			} else {
				candidates = properDescendants(n)
				ev.desc[n] = candidates
			}
		}
	}
	var childSols []solution
	for _, cand := range candidates {
		if cand.Kind == tree.Tuples {
			childSols = append(childSols, ev.tupleSolutions(c, cand)...)
			continue
		}
		childSols = append(childSols, ev.match(c, cand)...)
	}
	return dedupe(childSols)
}

// tupleSolutions yields the virtual matches a pushed-result node provides
// for query requirement c: one solution per binding tuple, when the node's
// recorded subquery fingerprint equals c's.
func (ev *evaluator) tupleSolutions(c *Node, n *tree.Node) []solution {
	// OR requirements delegate to their alternatives: the pushed query
	// was one concrete subtree.
	if c.Kind == Or {
		var sols []solution
		for _, alt := range c.Children {
			sols = append(sols, ev.tupleSolutions(alt, n)...)
		}
		return sols
	}
	if n.PushedQuery == "" || n.PushedQuery != ev.fingerprint(c) {
		return nil
	}
	sols := make([]solution, 0, len(n.PushedBindings))
	for _, b := range n.PushedBindings {
		s := solution{vars: map[string]string{}}
		for k, val := range b {
			s.vars[k] = val
		}
		sols = append(sols, s)
	}
	return sols
}

func joinSolutions(a, b []solution) []solution {
	var out []solution
	for _, sa := range a {
		for _, sb := range b {
			if m, ok := merge(sa, sb); ok {
				out = append(out, m)
			}
		}
	}
	return dedupe(out)
}

// properDescendants enumerates the query-visible descendants of n: the
// walk does not enter call parameters or pushed-result payloads (see
// rootScope.descCandidates).
func properDescendants(n *tree.Node) []*tree.Node {
	var out []*tree.Node
	for _, c := range n.Children {
		c.Walk(func(x *tree.Node) bool {
			out = append(out, x)
			return x.Kind != tree.Call && x.Kind != tree.Tuples
		})
	}
	return out
}
