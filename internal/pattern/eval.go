package pattern

import (
	"sort"
	"strings"

	"github.com/activexml/axml/internal/tree"
)

// Result is one element of the snapshot result of a query (Definition 1):
// the restriction of an embedding to the result nodes.
type Result struct {
	// Values holds the labels bound to result *variable* nodes, keyed by
	// variable name. A variable matched through a pushed-call tuple
	// (Section 7) appears here even though no document node exists for it.
	Values map[string]string
	// Nodes holds the document nodes matched by non-variable result nodes
	// (and by variable result nodes matched against concrete nodes),
	// keyed by the pattern node ID.
	Nodes map[int]*tree.Node
}

// Key returns a canonical identity for the result, used for
// deduplication: document node IDs for node captures and name=value pairs
// for variable bindings.
func (r Result) Key() string {
	return canonicalKey(r.Values, func(yield func(int, uint64)) {
		for id, n := range r.Nodes {
			yield(id, n.ID)
		}
	})
}

// canonicalKey renders variable bindings and (pattern ID, doc ID) node
// captures deterministically into one presized buffer: sorted "$k=v"
// pairs, then sorted "id@docID" pairs. It is the hot path of every
// deduplication, so it avoids the part-slice/sort.Strings/Join churn of
// the naive rendering.
func canonicalKey(vars map[string]string, caps func(yield func(int, uint64))) string {
	names := make([]string, 0, 8)
	size := 0
	for k, v := range vars {
		names = append(names, k)
		size += len(k) + len(v) + 3
	}
	sort.Strings(names)
	type cap struct {
		id  int
		doc uint64
	}
	ids := make([]cap, 0, 8)
	caps(func(id int, doc uint64) {
		ids = append(ids, cap{id, doc})
		size += 44
	})
	sort.Slice(ids, func(i, j int) bool { return ids[i].id < ids[j].id })
	var sb strings.Builder
	sb.Grow(size)
	for i, k := range names {
		if i > 0 {
			sb.WriteByte(';')
		}
		sb.WriteByte('$')
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(vars[k])
	}
	var buf [20]byte
	for i, c := range ids {
		if i > 0 || len(names) > 0 {
			sb.WriteByte(';')
		}
		sb.Write(appendUint(buf[:0], uint64(c.id)))
		sb.WriteByte('@')
		sb.Write(appendUint(buf[:0], c.doc))
	}
	return sb.String()
}

// appendUint appends the decimal rendering of v to dst without
// allocating.
func appendUint(dst []byte, v uint64) []byte {
	if v == 0 {
		return append(dst, '0')
	}
	var b [20]byte
	pos := len(b)
	for v > 0 {
		pos--
		b[pos] = byte('0' + v%10)
		v /= 10
	}
	return append(dst, b[pos:]...)
}

func itoa(i int) string {
	if i < 0 {
		return "-" + itoa(-i)
	}
	if i == 0 {
		return "0"
	}
	var b [20]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}

// Stats reports the work done by an evaluation, for the experiments.
type Stats struct {
	// NodesVisited counts (query node, document node) match attempts
	// actually computed (memo misses).
	NodesVisited int
	// MemoHits counts match attempts answered from the memo table
	// without recomputation. For a one-shot evaluation these are the
	// hits within the single pass; for an IncrementalEvaluator they
	// include reuse across rounds — the work the incremental engine
	// avoided.
	MemoHits int
	// SubtreesPruned counts document subtrees skipped wholesale by the
	// type-based projection predicate during descendant enumeration.
	// Zero when no Projector is installed.
	SubtreesPruned int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.NodesVisited += other.NodesVisited
	s.MemoHits += other.MemoHits
	s.SubtreesPruned += other.SubtreesPruned
}

// Projector is the type-based document-projection predicate (Benzaken,
// Castagna, Colazzo & Nguyễn): CanMatchBelow(label, id) reports whether
// an element named label can possibly contain — at the element itself or
// anywhere below it — a match for the query subtree rooted at the query
// node with the given ID. Descendant enumeration skips an element's
// whole subtree when the predicate returns false.
//
// Implementations must be conservative: returning false for a subtree
// that does contain a match makes evaluation unsound (results get lost).
// The predicate must be built for the *same* Pattern the evaluator runs
// (node IDs are meaningful only within one pattern), and its soundness
// is relative to the document conforming to the schema it was derived
// from. It must be safe for concurrent readers. The canonical
// implementation is schema.Projection.
type Projector interface {
	CanMatchBelow(label string, queryNodeID int) bool
}

// Eval computes the snapshot result of q on doc: one Result per distinct
// restriction of an embedding to the result nodes. The second return value
// reports evaluation effort.
func Eval(doc *tree.Document, q *Pattern) ([]Result, Stats) {
	return EvalProjected(doc, q, nil)
}

// EvalProjected is Eval evaluating under a document projection: desc-axis
// candidate walks skip subtrees proj proves statically irrelevant. With a
// sound projector the results are identical to Eval's, computed over a
// smaller working set; proj == nil disables projection.
func EvalProjected(doc *tree.Document, q *Pattern, proj Projector) ([]Result, Stats) {
	ev := newEvaluator(q)
	ev.proj = proj
	sink := newResultSink(q)
	ev.streamChildren(q.Root(), rootScope{doc: doc}, sink.add)
	return sink.out, ev.stats()
}

// EvalForest computes the snapshot result of q over a forest of detached
// trees, as a push-capable service does over its result (Section 7): the
// pattern's anchor children match forest roots (child edge) or any forest
// node (descendant edge).
func EvalForest(forest []*tree.Node, q *Pattern) ([]Result, Stats) {
	ev := newEvaluator(q)
	sink := newResultSink(q)
	ev.streamChildren(q.Root(), rootScope{forest: forest}, sink.add)
	return sink.out, ev.stats()
}

// HasEmbedding reports whether q has at least one embedding in doc. It
// short-circuits: the streaming evaluator stops at the first complete
// solution instead of materialising all of them.
func HasEmbedding(doc *tree.Document, q *Pattern) bool {
	ev := newEvaluator(q)
	found := false
	ev.streamChildren(q.Root(), rootScope{doc: doc}, func(solution) bool {
		found = true
		return false
	})
	return found
}

// MatchedCalls evaluates an extended query whose result node out is a
// function node and returns the distinct document function nodes matched
// by it, in document-order-independent but deterministic (ID) order. This
// is how LPQs and NFQs retrieve candidate relevant calls (Section 3).
func MatchedCalls(doc *tree.Document, q *Pattern, out *Node) []*tree.Node {
	calls, _ := MatchedCallsStats(doc, q, out)
	return calls
}

// MatchedCallsStats is MatchedCalls reporting the evaluation effort, for
// the engine's accounting.
func MatchedCallsStats(doc *tree.Document, q *Pattern, out *Node) ([]*tree.Node, Stats) {
	return MatchedCallsProjected(doc, q, out, nil)
}

// MatchedCallsProjected is MatchedCallsStats under a document projection
// (see EvalProjected). proj == nil disables projection.
func MatchedCallsProjected(doc *tree.Document, q *Pattern, out *Node, proj Projector) ([]*tree.Node, Stats) {
	rs, st := EvalProjected(doc, q, proj)
	return collectCalls(rs, out), st
}

// MatchedCallsPinned is MatchedCalls restricted to embeddings that map the
// node pin to the document node target. The F-guide filtering of Section
// 6.2 uses it to validate one candidate call at a time. It short-circuits
// on the first embedding that pins correctly.
func MatchedCallsPinned(doc *tree.Document, q *Pattern, out *Node, target *tree.Node) bool {
	ev := newEvaluator(q)
	ev.pinID, ev.pinTarget = out.ID, target
	found := false
	ev.streamChildren(q.Root(), rootScope{doc: doc}, func(s solution) bool {
		if s.caps[out.ID] == target {
			found = true
			return false
		}
		return true
	})
	return found
}

func collectCalls(rs []Result, out *Node) []*tree.Node {
	seen := map[*tree.Node]bool{}
	var calls []*tree.Node
	for _, r := range rs {
		if n := r.Nodes[out.ID]; n != nil && !seen[n] {
			seen[n] = true
			calls = append(calls, n)
		}
	}
	sort.Slice(calls, func(i, j int) bool { return calls[i].ID < calls[j].ID })
	return calls
}

// rootScope tells the evaluator what the anchor's children range over:
// either a document (child edge → the root element; descendant edge → any
// node) or a detached forest (child edge → the roots; descendant edge →
// any forest node).
type rootScope struct {
	doc    *tree.Document
	forest []*tree.Node
}

func (s rootScope) childCandidates() []*tree.Node {
	if s.doc != nil {
		return []*tree.Node{s.doc.Root}
	}
	return s.forest
}

// solution is one partial embedding: consistent variable bindings plus
// captured result nodes.
type solution struct {
	vars map[string]string
	caps map[int]*tree.Node
}

var emptySolution = solution{}

func (s solution) withVar(name, value string) (solution, bool) {
	if old, ok := s.vars[name]; ok {
		return s, old == value
	}
	nv := make(map[string]string, len(s.vars)+1)
	for k, v := range s.vars {
		nv[k] = v
	}
	nv[name] = value
	return solution{vars: nv, caps: s.caps}, true
}

func (s solution) withCap(id int, n *tree.Node) solution {
	nc := make(map[int]*tree.Node, len(s.caps)+1)
	for k, v := range s.caps {
		nc[k] = v
	}
	nc[id] = n
	return solution{vars: s.vars, caps: nc}
}

// merge combines two solutions if their variable bindings agree.
// Solutions are immutable, so the empty-side fast paths may share the
// other side's maps.
func merge(a, b solution) (solution, bool) {
	if len(a.vars) == 0 && len(a.caps) == 0 {
		return b, true
	}
	if len(b.vars) == 0 && len(b.caps) == 0 {
		return a, true
	}
	for k, v := range b.vars {
		if old, ok := a.vars[k]; ok && old != v {
			return solution{}, false
		}
	}
	out := a
	if len(b.vars) > 0 {
		out.vars = make(map[string]string, len(a.vars)+len(b.vars))
		for k, v := range a.vars {
			out.vars[k] = v
		}
		for k, v := range b.vars {
			out.vars[k] = v
		}
	}
	if len(b.caps) > 0 {
		out.caps = make(map[int]*tree.Node, len(a.caps)+len(b.caps))
		for k, v := range a.caps {
			out.caps[k] = v
		}
		for k, v := range b.caps {
			out.caps[k] = v
		}
	}
	return out, true
}

func (s solution) key() string {
	return canonicalKey(s.vars, func(yield func(int, uint64)) {
		for id, n := range s.caps {
			yield(id, n.ID)
		}
	})
}

func dedupe(sols []solution) []solution {
	if len(sols) < 2 {
		return sols
	}
	seen := make(map[string]bool, len(sols))
	out := sols[:0]
	for _, s := range sols {
		k := s.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, s)
		}
	}
	return out
}

type memoKey struct {
	qnode int
	dnode *tree.Node
}

// memoEntry distinguishes "computed, no solutions" from "not computed".
type memoEntry struct {
	sols []solution
}

type evaluator struct {
	q       *Pattern
	memo    map[memoKey]*memoEntry
	fps     map[int]string  // query node ID → pushed-subquery fingerprint
	order   map[int][]*Node // query node ID → cost-ordered children
	proj    Projector       // nil: no document projection
	visited int
	hits    int
	pruned  int

	// Pinning restricts embeddings to those mapping query node pinID to
	// pinTarget; used by MatchedCallsPinned. pinTarget == nil disables it.
	pinID     int
	pinTarget *tree.Node
}

func newEvaluator(q *Pattern) *evaluator {
	return &evaluator{
		q:    q,
		memo: map[memoKey]*memoEntry{},
		fps:  map[int]string{},
	}
}

func (ev *evaluator) stats() Stats {
	return Stats{NodesVisited: ev.visited, MemoHits: ev.hits, SubtreesPruned: ev.pruned}
}

// resultSink restricts streamed solutions to the query's result nodes and
// deduplicates them by canonical key, preserving first-occurrence order —
// the streaming counterpart of materialising all solutions and filtering
// at the end.
type resultSink struct {
	resultVars  map[string]bool
	resultNodes map[int]bool
	seen        map[string]bool
	out         []Result
}

func newResultSink(q *Pattern) *resultSink {
	sink := &resultSink{
		resultVars:  map[string]bool{},
		resultNodes: map[int]bool{},
		seen:        map[string]bool{},
	}
	for _, n := range q.ResultNodes() {
		if n.Kind == Var {
			sink.resultVars[n.Label] = true
		}
		sink.resultNodes[n.ID] = true
	}
	return sink
}

func (sink *resultSink) add(s solution) bool {
	r := Result{Values: map[string]string{}, Nodes: map[int]*tree.Node{}}
	for k, v := range s.vars {
		if sink.resultVars[k] {
			r.Values[k] = v
		}
	}
	for id, n := range s.caps {
		if sink.resultNodes[id] {
			r.Nodes[id] = n
		}
	}
	k := r.Key()
	if !sink.seen[k] {
		sink.seen[k] = true
		sink.out = append(sink.out, r)
	}
	return true
}

// collectResults drains a materialised solution set through a sink; the
// retained naive evaluator uses it so both evaluators share one
// restriction/deduplication definition.
func collectResults(q *Pattern, sols []solution) []Result {
	sink := newResultSink(q)
	for _, s := range sols {
		sink.add(s)
	}
	return sink.out
}

// fingerprint returns (and caches) the canonical form of the subquery
// rooted at query node v, for matching pushed-result tuples.
func (ev *evaluator) fingerprint(v *Node) string {
	if fp, ok := ev.fps[v.ID]; ok {
		return fp
	}
	fp := ev.q.Fingerprint(v)
	ev.fps[v.ID] = fp
	return fp
}

// match returns the solutions for embedding the query subtree rooted at v
// with v mapped to doc node n. Results are memoised: they only depend on
// (v, n).
func (ev *evaluator) match(v *Node, n *tree.Node) []solution {
	key := memoKey{v.ID, n}
	if e, ok := ev.memo[key]; ok {
		ev.hits++
		return e.sols
	}
	e := &memoEntry{} // inserted before computing; trees have no cycles
	ev.memo[key] = e
	e.sols = ev.computeMatch(v, n)
	return e.sols
}

func (ev *evaluator) computeMatch(v *Node, n *tree.Node) []solution {
	ev.visited++
	if ev.pinTarget != nil && v.ID == ev.pinID && n != ev.pinTarget {
		return nil
	}
	switch v.Kind {
	case Or:
		// The chosen alternative takes the OR's position.
		var sols []solution
		for _, alt := range v.Children {
			sols = append(sols, ev.match(alt, n)...)
		}
		return dedupe(sols)
	case Const:
		if !n.IsData() || n.Label != v.Label {
			return nil
		}
	case Star:
		if !n.IsData() {
			return nil
		}
	case Var:
		if !n.IsData() {
			return nil
		}
	case Func:
		if n.Kind != tree.Call {
			return nil
		}
		if v.Label != AnyFunc && v.Label != n.Label {
			return nil
		}
	default:
		return nil // Root never matches a concrete node
	}
	// Memo entries must hold the complete solution set (the incremental
	// evaluator replays them across rounds), so the stream below v is
	// drained here; laziness pays off above, where whole streams are
	// abandoned early.
	var out []solution
	ev.streamChildren(v, rootScope{forest: []*tree.Node{n}}, func(s solution) bool {
		if v.Kind == Var {
			var ok bool
			if s, ok = s.withVar(v.Label, n.Label); !ok {
				return true
			}
		}
		if v.Result {
			s = s.withCap(v.ID, n)
		}
		out = append(out, s)
		return true
	})
	return dedupe(out)
}

// streamChildren streams the joined solutions of every child requirement
// of v, where v itself is already mapped, calling yield for each complete
// combination; yield returning false stops the stream. It returns false
// iff the stream was stopped early.
//
// The join pipelines: a partial solution flows through the remaining
// requirements depth-first and no intermediate cross-product is ever
// allocated. Each requirement's solution sequence is pulled lazily off
// the document walk — candidates are matched one at a time, on demand,
// and the deduplicated prefix is cached so re-scans for later partial
// solutions never redo match work. Requirements stream in the same
// cheapest-first order as the eager evaluator, so a fully-drained run
// performs exactly the eager evaluator's match calls in the same order
// (identical Stats), while a short-circuited run (HasEmbedding, pinned
// validation) can abandon a document walk mid-subtree.
//
// For an anchor scope, candidates for a Child-edge requirement are the
// scope's roots; for a concrete node they are its children. Descendant
// requirements range over proper descendants (or all forest nodes for the
// anchor).
func (ev *evaluator) streamChildren(v *Node, scope rootScope, yield func(solution) bool) bool {
	reqs := ev.ordered(v)
	anchor := v.Kind == Root
	if len(reqs) == 0 {
		return yield(emptySolution)
	}
	streams := make([]*reqStream, len(reqs))
	var emit func(i int, acc solution) bool
	emit = func(i int, acc solution) bool {
		if i == len(reqs) {
			return yield(acc)
		}
		if streams[i] == nil {
			streams[i] = ev.newReqStream(reqs[i], anchor, scope)
		}
		for j := 0; ; j++ {
			s, ok := streams[i].get(j)
			if !ok {
				return true
			}
			if m, mok := merge(acc, s); mok {
				if !emit(i+1, m) {
					return false
				}
			}
		}
	}
	return emit(0, emptySolution)
}

// ordered returns v's children cheapest-first, so a failing condition is
// found before expensive descendant scans run. Joins are commutative and
// solutions are canonically deduplicated, so the order cannot change the
// result set. The ordering is computed once per query node and cached.
func (ev *evaluator) ordered(v *Node) []*Node {
	if len(v.Children) < 2 {
		return v.Children
	}
	if cached, ok := ev.order[v.ID]; ok {
		return cached
	}
	out := costOrdered(v)
	if ev.order == nil {
		ev.order = map[int][]*Node{}
	}
	ev.order[v.ID] = out
	return out
}

func costOrdered(v *Node) []*Node {
	out := append([]*Node(nil), v.Children...)
	cost := func(n *Node) int {
		c := subtreeSize(n)
		if n.Edge == Desc {
			c *= 8 // a descendant scan touches the whole subtree
		}
		return c
	}
	sort.SliceStable(out, func(i, j int) bool { return cost(out[i]) < cost(out[j]) })
	return out
}

func subtreeSize(n *Node) int {
	s := 1
	for _, c := range n.Children {
		s += subtreeSize(c)
	}
	return s
}

// reqStream is the lazily-pulled solution sequence of one child
// requirement within one scope. Candidates stream off the document in
// pre-order — a Child edge ranges over the scope's roots or children, a
// Desc edge drives an explicit-stack walk of the subtrees — and each
// candidate is matched at most once, with the deduplicated solution
// prefix cached for re-scans by the join. Descendant walks skip
// subtrees the projection predicate proves statically irrelevant for c,
// and never descend below call boundaries: the parameters of a call are
// the call's input, not document content — they only become
// query-visible if the call is invoked and happens to return them
// (pushed results have no element payload either).
type reqStream struct {
	ev   *evaluator
	c    *Node
	sols []solution      // deduplicated solutions pulled so far
	seen map[string]bool // dedup keys; nil until a second solution shows up
	done bool

	roots   []*tree.Node // pending child-edge candidates (nil once consumed)
	docRoot *tree.Node   // one-shot child-edge candidate (document anchor)
	stack   []*tree.Node // desc-edge DFS stack, top at the end
}

func (ev *evaluator) newReqStream(c *Node, anchor bool, scope rootScope) *reqStream {
	rs := &reqStream{ev: ev, c: c}
	if c.Edge == Child {
		if anchor {
			if scope.doc != nil {
				rs.docRoot = scope.doc.Root
			} else {
				rs.roots = scope.forest
			}
		} else {
			rs.roots = scope.forest[0].Children
		}
		return rs
	}
	// Descendant edge: the anchor ranges over the roots themselves and
	// everything below; a concrete scope node over its proper
	// descendants. Seed the stack in reverse so pops come in document
	// order.
	var roots []*tree.Node
	if anchor {
		if scope.doc != nil {
			rs.stack = []*tree.Node{scope.doc.Root}
			return rs
		}
		roots = scope.forest
	} else {
		roots = scope.forest[0].Children
	}
	rs.stack = make([]*tree.Node, 0, len(roots))
	for i := len(roots) - 1; i >= 0; i-- {
		rs.stack = append(rs.stack, roots[i])
	}
	return rs
}

// get returns the j-th deduplicated solution of the requirement, pulling
// candidates off the document walk until it exists or the walk is
// exhausted.
func (rs *reqStream) get(j int) (solution, bool) {
	for j >= len(rs.sols) && !rs.done {
		rs.pull()
	}
	if j < len(rs.sols) {
		return rs.sols[j], true
	}
	return solution{}, false
}

// pull advances the candidate walk by one node and folds its solutions
// into the cache.
func (rs *reqStream) pull() {
	n := rs.nextCandidate()
	if n == nil {
		rs.done = true
		return
	}
	if n.Kind == tree.Tuples {
		for _, s := range tupleSolutions(rs.c, n, rs.ev.fingerprint) {
			rs.add(s)
		}
		return
	}
	for _, s := range rs.ev.match(rs.c, n) {
		rs.add(s)
	}
}

func (rs *reqStream) nextCandidate() *tree.Node {
	if rs.docRoot != nil {
		n := rs.docRoot
		rs.docRoot = nil
		return n
	}
	if len(rs.roots) > 0 {
		n := rs.roots[0]
		rs.roots = rs.roots[1:]
		return n
	}
	ev := rs.ev
	for len(rs.stack) > 0 {
		n := rs.stack[len(rs.stack)-1]
		rs.stack = rs.stack[:len(rs.stack)-1]
		if ev.proj != nil && n.Kind == tree.Element && !ev.proj.CanMatchBelow(n.Label, rs.c.ID) {
			ev.pruned++
			continue
		}
		if n.Kind != tree.Call && n.Kind != tree.Tuples {
			for i := len(n.Children) - 1; i >= 0; i-- {
				rs.stack = append(rs.stack, n.Children[i])
			}
		}
		return n
	}
	return nil
}

// add appends s unless an equal solution was already pulled, preserving
// first-occurrence order — the streaming equivalent of dedupe. Key
// rendering starts only when a second solution appears, so the common
// zero/one-solution requirement never pays for it.
func (rs *reqStream) add(s solution) {
	if rs.seen == nil {
		if len(rs.sols) == 0 {
			rs.sols = append(rs.sols, s)
			return
		}
		rs.seen = map[string]bool{rs.sols[0].key(): true}
	}
	k := s.key()
	if !rs.seen[k] {
		rs.seen[k] = true
		rs.sols = append(rs.sols, s)
	}
}

// requirementSolutions drains the requirement's stream into a
// materialised set — the entry point the residual matcher uses, where
// candidate batches are validated jointly.
func (ev *evaluator) requirementSolutions(c *Node, anchor bool, scope rootScope) []solution {
	rs := ev.newReqStream(c, anchor, scope)
	for !rs.done {
		rs.pull()
	}
	return rs.sols
}

// tupleSolutions yields the virtual matches a pushed-result node provides
// for query requirement c: one solution per binding tuple, when the node's
// recorded subquery fingerprint equals c's. Both evaluators share it via
// their fingerprint caches.
func tupleSolutions(c *Node, n *tree.Node, fingerprint func(*Node) string) []solution {
	// OR requirements delegate to their alternatives: the pushed query
	// was one concrete subtree.
	if c.Kind == Or {
		var sols []solution
		for _, alt := range c.Children {
			sols = append(sols, tupleSolutions(alt, n, fingerprint)...)
		}
		return sols
	}
	if n.PushedQuery == "" || n.PushedQuery != fingerprint(c) {
		return nil
	}
	sols := make([]solution, 0, len(n.PushedBindings))
	for _, b := range n.PushedBindings {
		s := solution{vars: map[string]string{}}
		for k, val := range b {
			s.vars[k] = val
		}
		sols = append(sols, s)
	}
	return sols
}
