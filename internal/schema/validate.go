package schema

import (
	"fmt"
	"strings"

	"github.com/activexml/axml/internal/regex"
	"github.com/activexml/axml/internal/tree"
)

// ValidateDocument checks an AXML document against the schema: every
// declared element's children must match its content model, with function
// nodes standing for their own names (so a content model like
// "data|getRating" admits either a value or an embedded call), and every
// call to a declared service must have parameters matching its input
// type. Elements and services the schema does not declare are not
// checked — AXML schemas are open, like the paper's τ, which only
// constrains the symbols it mentions.
//
// The returned error aggregates every violation, one per line, or is nil
// when the document conforms.
func (s *Schema) ValidateDocument(doc *tree.Document) error {
	v := &docValidator{schema: s, content: map[string]*regex.NFA{}, inputs: map[string]*regex.NFA{}}
	v.check(doc.Root)
	if len(v.violations) == 0 {
		return nil
	}
	return fmt.Errorf("schema: document violates the schema:\n  %s",
		strings.Join(v.violations, "\n  "))
}

type docValidator struct {
	schema     *Schema
	content    map[string]*regex.NFA
	inputs     map[string]*regex.NFA
	violations []string
}

func (v *docValidator) violate(n *tree.Node, format string, args ...any) {
	v.violations = append(v.violations,
		fmt.Sprintf("%s: %s", n.PathString(), fmt.Sprintf(format, args...)))
}

func (v *docValidator) check(n *tree.Node) {
	switch n.Kind {
	case tree.Element:
		if model, ok := v.schema.Elements[n.Label]; ok {
			nfa := v.content[n.Label]
			if nfa == nil {
				nfa = regex.Compile(model)
				v.content[n.Label] = nfa
			}
			word, ok := childWord(n)
			if !ok {
				v.violate(n, "mixed pushed-result content cannot be typed")
			} else if !nfa.Matches(word) {
				v.violate(n, "children [%s] do not match content model %s",
					strings.Join(word, " "), model)
			}
		}
		for _, c := range n.Children {
			v.check(c)
		}
	case tree.Call:
		if sig, ok := v.schema.Functions[n.Label]; ok {
			nfa := v.inputs[n.Label]
			if nfa == nil {
				nfa = regex.Compile(sig.In)
				v.inputs[n.Label] = nfa
			}
			word, ok := childWord(n)
			if !ok {
				v.violate(n, "pushed results cannot be call parameters")
			} else if !nfa.Matches(word) {
				v.violate(n, "parameters [%s] do not match input type %s",
					strings.Join(word, " "), sig.In)
			}
		}
		// Parameters are themselves AXML trees: validate them too.
		for _, c := range n.Children {
			v.check(c)
		}
	case tree.Text, tree.Tuples:
		// Leaves; Tuples payloads are engine-internal.
	}
}

// childWord maps a node's children to the symbol word its content model
// must accept: element names, function names, and "data" for text leaves.
// Pushed-result nodes have no schema-level symbol, so a false return
// flags them.
func childWord(n *tree.Node) ([]string, bool) {
	word := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		switch c.Kind {
		case tree.Element, tree.Call:
			word = append(word, c.Label)
		case tree.Text:
			word = append(word, DataSymbol)
		default:
			return nil, false
		}
	}
	return word, true
}
