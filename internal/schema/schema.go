// Package schema implements the typing machinery of "Lazy Query Evaluation
// for Active XML" (SIGMOD 2004): the DTD-like schemas of Figure 2 that
// describe service signatures and element content models, and the
// satisfiability analysis of Section 5 (Definition 6) that decides whether
// a function's *derived* output instances can contribute to a query
// subtree. A lenient, polynomial variant (Section 6.1) that ignores
// cardinality and order is provided alongside the exact algorithm.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"github.com/activexml/axml/internal/regex"
)

// DataSymbol is the keyword standing for data values in content models and
// signatures ("data" in Figure 2 of the paper).
const DataSymbol = "data"

// Signature is the input/output type of a Web service: regular expressions
// over element, data and function symbols, as found in a WSDL description
// extended with intensional-data information (Section 2 of the paper).
type Signature struct {
	// In describes the forest of parameters the service expects.
	In regex.Expr
	// Out describes the forest of trees the service returns. Function
	// symbols in Out mean the result may embed calls to those services.
	Out regex.Expr
}

// Schema is the τ of the paper: signatures for functions and content
// models for elements. The structure of an element's children must match
// its content model; a data value is a leaf.
type Schema struct {
	// Functions maps service names to their signatures.
	Functions map[string]Signature
	// Elements maps element names to their content models.
	Elements map[string]regex.Expr
}

// New returns an empty schema ready to be populated.
func New() *Schema {
	return &Schema{Functions: map[string]Signature{}, Elements: map[string]regex.Expr{}}
}

// IsFunction reports whether the symbol names a declared service.
func (s *Schema) IsFunction(name string) bool {
	_, ok := s.Functions[name]
	return ok
}

// IsElement reports whether the symbol names a declared element.
func (s *Schema) IsElement(name string) bool {
	_, ok := s.Elements[name]
	return ok
}

// FunctionNames returns the declared service names, sorted.
func (s *Schema) FunctionNames() []string {
	out := make([]string, 0, len(s.Functions))
	for n := range s.Functions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Parse reads the textual schema syntax modelled on the paper's Figure 2:
//
//	functions:
//	  getHotels  = [in: data, out: hotel*]
//	  getRating  = [in: data, out: data]
//	elements:
//	  hotels  = hotel*.getHotels?
//	  hotel   = name.address.rating.nearby
//	  rating  = data|getRating
//	  name    = data
//
// Lines starting with "#" are comments. Content models use the regex
// package's DTD-like operators: "." concatenation, "|" alternation,
// postfix "*", "+", "?", parentheses, and "#eps"/"#empty".
func Parse(input string) (*Schema, error) {
	s := New()
	section := ""
	for lineNo, raw := range strings.Split(input, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch line {
		case "functions:":
			section = "functions"
			continue
		case "elements:":
			section = "elements"
			continue
		}
		name, rhs, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("schema: line %d: expected 'name = ...', got %q", lineNo+1, line)
		}
		name = strings.TrimSpace(name)
		rhs = strings.TrimSpace(rhs)
		switch section {
		case "functions":
			sig, err := parseSignature(rhs)
			if err != nil {
				return nil, fmt.Errorf("schema: line %d (%s): %w", lineNo+1, name, err)
			}
			if _, dup := s.Functions[name]; dup {
				return nil, fmt.Errorf("schema: line %d: duplicate function %q", lineNo+1, name)
			}
			s.Functions[name] = sig
		case "elements":
			e, err := regex.Parse(rhs)
			if err != nil {
				return nil, fmt.Errorf("schema: line %d (%s): %w", lineNo+1, name, err)
			}
			if _, dup := s.Elements[name]; dup {
				return nil, fmt.Errorf("schema: line %d: duplicate element %q", lineNo+1, name)
			}
			s.Elements[name] = e
		default:
			return nil, fmt.Errorf("schema: line %d: %q outside of a functions:/elements: section", lineNo+1, line)
		}
	}
	return s, nil
}

// MustParse is Parse panicking on error, for tests and literals.
func MustParse(input string) *Schema {
	s, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return s
}

func parseSignature(rhs string) (Signature, error) {
	rhs = strings.TrimSpace(rhs)
	if !strings.HasPrefix(rhs, "[") || !strings.HasSuffix(rhs, "]") {
		return Signature{}, fmt.Errorf("signature must be of the form [in: ..., out: ...]")
	}
	body := rhs[1 : len(rhs)-1]
	inPart, outPart, ok := strings.Cut(body, ",")
	if !ok {
		return Signature{}, fmt.Errorf("signature must contain in and out parts")
	}
	inStr, ok1 := strings.CutPrefix(strings.TrimSpace(inPart), "in:")
	outStr, ok2 := strings.CutPrefix(strings.TrimSpace(outPart), "out:")
	if !ok1 || !ok2 {
		return Signature{}, fmt.Errorf("signature parts must be labelled in: and out:")
	}
	in, err := regex.Parse(strings.TrimSpace(inStr))
	if err != nil {
		return Signature{}, fmt.Errorf("in type: %w", err)
	}
	out, err := regex.Parse(strings.TrimSpace(outStr))
	if err != nil {
		return Signature{}, fmt.Errorf("out type: %w", err)
	}
	return Signature{In: in, Out: out}, nil
}

// Validate checks that every symbol mentioned in a content model or
// signature is either "data", a declared element, or a declared function,
// and returns an error listing the undefined ones.
func (s *Schema) Validate() error {
	var missing []string
	seen := map[string]bool{}
	check := func(e regex.Expr) {
		for sym := range e.Symbols() {
			if sym == DataSymbol || s.IsElement(sym) || s.IsFunction(sym) || seen[sym] {
				continue
			}
			seen[sym] = true
			missing = append(missing, sym)
		}
	}
	for _, e := range s.Elements {
		check(e)
	}
	for _, sig := range s.Functions {
		check(sig.In)
		check(sig.Out)
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	return fmt.Errorf("schema: undefined symbols: %s", strings.Join(missing, ", "))
}

// String renders the schema back in the Parse syntax, deterministically.
func (s *Schema) String() string {
	var sb strings.Builder
	sb.WriteString("functions:\n")
	for _, n := range s.FunctionNames() {
		sig := s.Functions[n]
		fmt.Fprintf(&sb, "  %s = [in: %s, out: %s]\n", n, sig.In, sig.Out)
	}
	sb.WriteString("elements:\n")
	names := make([]string, 0, len(s.Elements))
	for n := range s.Elements {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "  %s = %s\n", n, s.Elements[n])
	}
	return sb.String()
}
