package schema

import (
	"sort"

	"github.com/activexml/axml/internal/pattern"
)

// Projection is the type-based document-projection predicate of
// Benzaken, Castagna, Colazzo & Nguyễn, specialised to the paper's
// satisfiability analysis: an element labelled L can be skipped wholesale
// while searching candidates for the query subtree rooted at v exactly
// when desc(L, v) is false — no tree derived from L contains a match of
// sub_v at its root or anywhere below, not even after expanding the
// service calls its content model allows. The pattern evaluator consults
// it during descendant enumeration (pattern.Projector), so evaluation
// cost scales with the projected document instead of the full one.
//
// Soundness is relative to the analyzer's assumptions, the same ones
// that already govern typed relevance pruning (Section 5): the document
// conforms to the schema and services conform to their signatures.
// Labels the schema does not declare as elements are never pruned — an
// unknown element may contain anything — and non-element nodes (text,
// calls, pushed tuples) are never pruned either.
//
// A Projection is immutable after construction and safe for concurrent
// readers; one instance may be shared by every evaluator shard of a
// query.
type Projection struct {
	an      *Analyzer
	nodes   int
	trivial bool
}

var _ pattern.Projector = (*Projection)(nil)

// Projection derives the projection predicate from the analyzer's desc
// table, reusing the already-computed fixpoint.
func (a *Analyzer) Projection() *Projection {
	p := &Projection{an: a, nodes: len(a.q.Nodes()), trivial: true}
	for sym, si := range a.symIndex {
		if !a.schema.IsElement(sym) {
			continue
		}
		for _, v := range a.q.Nodes() {
			if v.Kind == pattern.Root {
				continue
			}
			if !a.desc[si][v.ID] {
				p.trivial = false
				return p
			}
		}
	}
	return p
}

// NewProjection builds the satisfiability tables for (s, q) and derives
// the projection predicate. When an Analyzer for the pair already
// exists, use its Projection method instead of paying the fixpoint
// twice.
func NewProjection(s *Schema, q *pattern.Pattern, mode Mode) *Projection {
	return NewAnalyzer(s, q, mode).Projection()
}

// CanMatchBelow reports whether an element labelled label can contain a
// match of the query subtree rooted at node id, at the element itself or
// anywhere below. It is conservative: unknown labels and foreign node
// IDs answer true.
func (p *Projection) CanMatchBelow(label string, id int) bool {
	si, ok := p.an.symIndex[label]
	if !ok || !p.an.schema.IsElement(label) {
		return true
	}
	if id < 0 || id >= p.nodes {
		return true
	}
	return p.an.desc[si][id]
}

// CanMatchAnyBelow reports whether an element labelled label can
// contain a match of ANY query subtree, at the element or anywhere
// below — the disjunction of CanMatchBelow over every non-root query
// node. When it answers false the element's whole region is dead for
// this query: no query node can match inside it, so an index over call
// positions (the F-guide) may skip the region entirely without losing a
// candidate. Conservative like CanMatchBelow: unknown labels answer
// true.
func (p *Projection) CanMatchAnyBelow(label string) bool {
	si, ok := p.an.symIndex[label]
	if !ok || !p.an.schema.IsElement(label) {
		return true
	}
	for _, v := range p.an.q.Nodes() {
		if v.Kind == pattern.Root {
			continue
		}
		if p.an.desc[si][v.ID] {
			return true
		}
	}
	return false
}

// Trivial reports that no (element, query node) pair is prunable: the
// projection can never skip a subtree, so installing it buys nothing.
// Callers use it to skip the per-node predicate on schemas too loose to
// help.
func (p *Projection) Trivial() bool { return p.trivial }

// PrunedPair names one (element label, query node) combination the
// projection skips.
type PrunedPair struct {
	Label  string
	NodeID int
}

// PrunedPairs lists the (element label, query node ID) pairs the
// projection would skip, sorted, for tests and explain tooling.
func (p *Projection) PrunedPairs() []PrunedPair {
	var out []PrunedPair
	syms := make([]string, 0, len(p.an.symIndex))
	for sym := range p.an.symIndex {
		if p.an.schema.IsElement(sym) {
			syms = append(syms, sym)
		}
	}
	sort.Strings(syms)
	for _, sym := range syms {
		si := p.an.symIndex[sym]
		for _, v := range p.an.q.Nodes() {
			if v.Kind == pattern.Root {
				continue
			}
			if !p.an.desc[si][v.ID] {
				out = append(out, PrunedPair{Label: sym, NodeID: v.ID})
			}
		}
	}
	return out
}
