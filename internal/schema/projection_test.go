package schema

import (
	"math/rand"
	"testing"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/tree"
)

// projSchema declares a document family with a large statically
// irrelevant region (archive) next to the region the hotel queries care
// about — the shape projection exists for.
func projSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := Parse(`
functions:
  getInfo = [in: data, out: info*]
elements:
  site = section*
  section = hotels|archive
  hotels = hotel*
  archive = entry*
  entry = (info|getInfo)*
  info = data
  hotel = name.rating.nearby?
  name = data
  rating = data
  nearby = restaurant*
  restaurant = name.rating
`)
	if err != nil {
		t.Fatalf("parse schema: %v", err)
	}
	return s
}

// projValues deliberately collide with element names: a text node
// labelled "archive" must never be confused with the archive element by
// the pruning predicate.
var projValues = []string{"good", "bad", "archive", "hotel", "info"}

func projValue(rng *rand.Rand) string { return projValues[rng.Intn(len(projValues))] }

// randConformingDoc grows a random document conforming to projSchema:
// sections holding either hotels or archives of entries, with optional
// unexpanded getInfo calls where the content model allows them.
func randConformingDoc(rng *rand.Rand) *tree.Document {
	site := tree.NewElement("site")
	for i, sections := 0, 1+rng.Intn(4); i < sections; i++ {
		section := site.Append(tree.NewElement("section"))
		if rng.Intn(2) == 0 {
			hotels := section.Append(tree.NewElement("hotels"))
			for h, n := 0, rng.Intn(4); h < n; h++ {
				hotel := hotels.Append(tree.NewElement("hotel"))
				hotel.Append(tree.NewElement("name")).Append(tree.NewText(projValue(rng)))
				hotel.Append(tree.NewElement("rating")).Append(tree.NewText(projValue(rng)))
				if rng.Intn(2) == 0 {
					nearby := hotel.Append(tree.NewElement("nearby"))
					for r, m := 0, rng.Intn(3); r < m; r++ {
						resto := nearby.Append(tree.NewElement("restaurant"))
						resto.Append(tree.NewElement("name")).Append(tree.NewText(projValue(rng)))
						resto.Append(tree.NewElement("rating")).Append(tree.NewText(projValue(rng)))
					}
				}
			}
		} else {
			archive := section.Append(tree.NewElement("archive"))
			for e, n := 0, rng.Intn(4); e < n; e++ {
				entry := archive.Append(tree.NewElement("entry"))
				for j, m := 0, rng.Intn(3); j < m; j++ {
					if rng.Intn(4) == 0 {
						entry.Append(tree.NewCall("getInfo", tree.NewText("q")))
					} else {
						entry.Append(tree.NewElement("info")).Append(tree.NewText(projValue(rng)))
					}
				}
			}
		}
	}
	return tree.NewDocument(site)
}

var projQueries = []string{
	`//hotel[rating=$R] -> $R`,
	`//restaurant[name=$N] -> $N`,
	`//info[$V] -> $V`,
	`/site//hotels/hotel[name=$N][rating="good"] -> $N`,
	`//entry//getInfo()!`,
	`//archive//info[$V] -> $V`,
	`//nearby/restaurant[rating=$R][name=$N] -> $N, $R`,
	`//hotel[name=$V][rating=$V] -> $V`,
}

// assertProjectedEqual checks that projected evaluation returns exactly
// the oracle's results, in the oracle's order, and returns the projected
// stats.
func assertProjectedEqual(t testing.TB, doc *tree.Document, q *pattern.Pattern, proj *Projection, label string) pattern.Stats {
	t.Helper()
	got, st := pattern.EvalProjected(doc, q, proj)
	want, _ := pattern.EvalNaive(doc, q)
	if len(got) != len(want) {
		t.Fatalf("%s: projected returned %d results, oracle %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Key() != want[i].Key() {
			t.Fatalf("%s: result %d differs: projected %q oracle %q", label, i, got[i].Key(), want[i].Key())
		}
	}
	return st
}

func TestProjectionPredicate(t *testing.T) {
	s := projSchema(t)
	q := pattern.MustParse(`//hotel[rating=$R] -> $R`)
	var hotel *pattern.Node
	for _, n := range q.Nodes() {
		if n.Label == "hotel" {
			hotel = n
		}
	}
	if hotel == nil {
		t.Fatal("no hotel node")
	}
	for _, mode := range []Mode{Exact, Lenient} {
		proj := NewProjection(s, q, mode)
		if proj.CanMatchBelow("archive", hotel.ID) {
			t.Errorf("mode %d: archive cannot contain hotels, must be prunable", mode)
		}
		if !proj.CanMatchBelow("hotels", hotel.ID) || !proj.CanMatchBelow("section", hotel.ID) {
			t.Errorf("mode %d: hotels/section must stay", mode)
		}
		if !proj.CanMatchBelow("unknownElement", hotel.ID) {
			t.Errorf("mode %d: undeclared labels must never be pruned", mode)
		}
		if proj.Trivial() {
			t.Errorf("mode %d: projection with prunable pairs reported trivial", mode)
		}
		if len(proj.PrunedPairs()) == 0 {
			t.Errorf("mode %d: expected non-empty pruned pairs", mode)
		}
	}
}

func TestProjectionTrivialWhenNothingPrunable(t *testing.T) {
	s := projSchema(t)
	// Every element of the schema contains data somewhere below, so a
	// bare-variable query can never skip anything.
	q := pattern.MustParse(`//$V -> $V`)
	if proj := NewProjection(s, q, Exact); !proj.Trivial() {
		t.Fatalf("expected trivial projection, pruned pairs: %v", proj.PrunedPairs())
	}
}

func TestProjectionEvalEquivalenceRandom(t *testing.T) {
	s := projSchema(t)
	prunedTotal := 0
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randConformingDoc(rng)
		if err := s.ValidateDocument(doc); err != nil {
			t.Fatalf("seed %d: generator broke conformance: %v", seed, err)
		}
		for _, qs := range projQueries {
			q := pattern.MustParse(qs)
			for _, mode := range []Mode{Exact, Lenient} {
				st := assertProjectedEqual(t, doc, q, NewProjection(s, q, mode), qs)
				prunedTotal += st.SubtreesPruned
			}
		}
	}
	if prunedTotal == 0 {
		t.Fatal("projection never pruned a subtree across the whole sweep")
	}
}

// TestProjectionIncrementalUnderMutations drives a projected
// IncrementalEvaluator through conforming call replacements (getInfo
// returns info*, per its signature) and compares every round against the
// retained oracle.
func TestProjectionIncrementalUnderMutations(t *testing.T) {
	s := projSchema(t)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		doc := randConformingDoc(rng)
		var ievs []*pattern.IncrementalEvaluator
		var qs []*pattern.Pattern
		for _, src := range projQueries {
			q := pattern.MustParse(src)
			qs = append(qs, q)
			ievs = append(ievs, pattern.NewIncrementalProjected(q, NewProjection(s, q, Exact)))
		}
		for round := 0; ; round++ {
			for i, iev := range ievs {
				got, _ := iev.EvalIncremental(doc)
				want, _ := pattern.EvalNaive(doc, qs[i])
				if len(got) != len(want) {
					t.Fatalf("seed %d round %d %s: incremental %d results, oracle %d", seed, round, projQueries[i], len(got), len(want))
				}
				for j := range got {
					if got[j].Key() != want[j].Key() {
						t.Fatalf("seed %d round %d %s: result %d differs", seed, round, projQueries[i], j)
					}
				}
			}
			calls := doc.Calls()
			if len(calls) == 0 || round >= 3 {
				break
			}
			call := calls[rng.Intn(len(calls))]
			parent := call.Parent
			var forest []*tree.Node
			for k, n := 0, rng.Intn(3); k < n; k++ {
				info := tree.NewElement("info")
				info.Append(tree.NewText(projValue(rng)))
				forest = append(forest, info)
			}
			doc.ReplaceCall(call, forest)
			for _, iev := range ievs {
				iev.Invalidate(parent, call)
			}
		}
	}
}

// FuzzProject checks the projection predicate never prunes a matching
// subtree: on schema-conforming documents, projected evaluation must
// return exactly what the retained oracle returns, for every query shape
// and both analyzer modes.
func FuzzProject(f *testing.F) {
	f.Add(int64(1), uint8(0), false)
	f.Add(int64(7), uint8(3), true)
	f.Add(int64(42), uint8(5), false)
	f.Fuzz(func(t *testing.T, seed int64, qpick uint8, lenient bool) {
		s := projSchema(t)
		rng := rand.New(rand.NewSource(seed))
		doc := randConformingDoc(rng)
		qs := projQueries[int(qpick)%len(projQueries)]
		q := pattern.MustParse(qs)
		mode := Exact
		if lenient {
			mode = Lenient
		}
		assertProjectedEqual(t, doc, q, NewProjection(s, q, mode), qs)
	})
}
