package schema

import (
	"strings"
	"testing"

	"github.com/activexml/axml/internal/tree"
)

func mustDoc(t *testing.T, xml string) *tree.Document {
	t.Helper()
	d, err := tree.Unmarshal([]byte(xml))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidateDocumentConforming(t *testing.T) {
	s := fig2(t)
	d := mustDoc(t, `
<hotels>
  <hotel>
    <name>Best Western</name>
    <address>75, 2nd Av.</address>
    <rating><axml:call service="getRating"><p>BW</p></axml:call></rating>
    <nearby>
      <restaurant><name>Jo</name><address>2nd</address><rating>***</rating></restaurant>
      <axml:call service="getNearbyRestos"><p>2nd</p></axml:call>
      <axml:call service="getNearbyMuseums"><p>2nd</p></axml:call>
    </nearby>
  </hotel>
  <axml:call service="getHotels"><p>NY</p></axml:call>
</hotels>`)
	// The running example's calls take a single data parameter; the
	// schema's in: data admits exactly one text child — the <p> wrappers
	// above are elements, so adjust the schema expectation: use direct
	// text parameters instead.
	d2 := mustDoc(t, `
<hotels>
  <hotel>
    <name>Best Western</name>
    <address>75, 2nd Av.</address>
    <rating><axml:call service="getRating">BW</axml:call></rating>
    <nearby>
      <restaurant><name>Jo</name><address>2nd</address><rating>***</rating></restaurant>
      <axml:call service="getNearbyRestos">2nd</axml:call>
    </nearby>
  </hotel>
  <axml:call service="getHotels">NY</axml:call>
</hotels>`)
	if err := s.ValidateDocument(d2); err != nil {
		t.Fatalf("conforming document rejected: %v", err)
	}
	// The first document has element-wrapped parameters, which in: data
	// rejects.
	err := s.ValidateDocument(d)
	if err == nil || !strings.Contains(err.Error(), "input type") {
		t.Fatalf("element parameters should violate in: data, got %v", err)
	}
}

func TestValidateDocumentContentViolations(t *testing.T) {
	s := fig2(t)
	// hotel missing its rating, restaurant with an extra child.
	d := mustDoc(t, `
<hotels>
  <hotel>
    <name>X</name>
    <address>Y</address>
    <nearby>
      <restaurant><name>Jo</name><address>2nd</address><rating>*</rating><spam/></restaurant>
    </nearby>
  </hotel>
</hotels>`)
	err := s.ValidateDocument(d)
	if err == nil {
		t.Fatal("violations not reported")
	}
	msg := err.Error()
	if !strings.Contains(msg, "/hotels/hotel:") {
		t.Errorf("missing-rating violation not located: %v", msg)
	}
	if !strings.Contains(msg, "restaurant") || !strings.Contains(msg, "spam") {
		t.Errorf("extra-child violation not reported: %v", msg)
	}
}

func TestValidateDocumentCallsInContent(t *testing.T) {
	s := fig2(t)
	// A getRating call may stand in for the rating value, but a
	// getNearbyRestos call may not.
	good := mustDoc(t, `<rating><axml:call service="getRating">p</axml:call></rating>`)
	if err := s.ValidateDocument(good); err != nil {
		t.Fatalf("call-for-data substitution rejected: %v", err)
	}
	bad := mustDoc(t, `<rating><axml:call service="getNearbyRestos">p</axml:call></rating>`)
	if err := s.ValidateDocument(bad); err == nil {
		t.Fatal("wrong call kind accepted in rating content")
	}
}

func TestValidateDocumentOpenWorld(t *testing.T) {
	s := fig2(t)
	// Undeclared elements and services are unconstrained.
	d := mustDoc(t, `<unknown><whatever/><axml:call service="mystery"><x/><y/></axml:call></unknown>`)
	if err := s.ValidateDocument(d); err != nil {
		t.Fatalf("open-world symbols must pass: %v", err)
	}
}

func TestValidateDocumentTuplesAreOpaque(t *testing.T) {
	s := MustParse("elements:\n  zone = data\n")
	root := tree.NewElement("zone")
	root.Append(tree.NewTuples("q", []tree.Binding{{"X": "1"}}))
	d := tree.NewDocument(root)
	err := s.ValidateDocument(d)
	if err == nil || !strings.Contains(err.Error(), "pushed-result") {
		t.Fatalf("tuples content should be flagged: %v", err)
	}
}
