package schema

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/activexml/axml/internal/pattern"
)

// figure2 is the schema τ of the paper's Figure 2.
const figure2 = `
# The running example's service signatures and content models.
functions:
  getHotels        = [in: data, out: hotel*]
  getRating        = [in: data, out: data]
  getNearbyRestos  = [in: data, out: restaurant*]
  getNearbyMuseums = [in: data, out: museum*]
elements:
  hotels     = (hotel|getHotels)*
  hotel      = name.address.rating.nearby
  nearby     = (restaurant|getNearbyRestos)*.(museum|getNearbyMuseums)*
  restaurant = name.address.rating
  museum     = name.address
  name       = data
  address    = data
  rating     = data|getRating
`

func fig2(t *testing.T) *Schema {
	t.Helper()
	s, err := Parse(figure2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseFigure2(t *testing.T) {
	s := fig2(t)
	if len(s.Functions) != 4 || len(s.Elements) != 8 {
		t.Fatalf("got %d functions, %d elements", len(s.Functions), len(s.Elements))
	}
	sig := s.Functions["getNearbyRestos"]
	if sig.In.String() != "data" || sig.Out.String() != "restaurant*" {
		t.Fatalf("getNearbyRestos signature = in:%s out:%s", sig.In, sig.Out)
	}
	if !s.IsFunction("getRating") || s.IsFunction("rating") {
		t.Fatal("IsFunction misclassifies")
	}
	if !s.IsElement("rating") || s.IsElement("getRating") {
		t.Fatal("IsElement misclassifies")
	}
	names := s.FunctionNames()
	if len(names) != 4 || names[0] != "getHotels" {
		t.Fatalf("FunctionNames = %v", names)
	}
}

func TestSchemaStringRoundTrip(t *testing.T) {
	s := fig2(t)
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, s.String())
	}
	if s.String() != s2.String() {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", s.String(), s2.String())
	}
}

func TestParseErrors(t *testing.T) {
	for name, in := range map[string]string{
		"no section":    "a = b",
		"no equals":     "functions:\n  junk line",
		"bad signature": "functions:\n  f = data",
		"no out":        "functions:\n  f = [in: data]",
		"bad labels":    "functions:\n  f = [input: data, output: data]",
		"bad in regex":  "functions:\n  f = [in: ((, out: data]",
		"bad out regex": "functions:\n  f = [in: data, out: ))]",
		"bad content":   "elements:\n  e = a..b",
		"dup function":  "functions:\n  f = [in: data, out: data]\n  f = [in: data, out: data]",
		"dup element":   "elements:\n  e = data\n  e = data",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestValidate(t *testing.T) {
	s := MustParse("elements:\n  a = b.data\nfunctions:\n  f = [in: data, out: ghost]")
	err := s.Validate()
	if err == nil {
		t.Fatal("expected undefined-symbol error")
	}
	for _, missing := range []string{"b", "ghost"} {
		if !strings.Contains(err.Error(), missing) {
			t.Errorf("error %q does not mention %s", err, missing)
		}
	}
}

// nodeByLabel fetches a query node for satisfiability probing.
func nodeByLabel(t *testing.T, q *pattern.Pattern, label string) *pattern.Node {
	t.Helper()
	for _, n := range q.Nodes() {
		if n.Label == label {
			return n
		}
	}
	t.Fatalf("no node %q in %s", label, q)
	return nil
}

// figure4 is the paper's example query.
const figure4 = `/hotels/hotel[name="Best Western"][rating="*****"]/nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y`

func TestSatisfiabilityRunningExample(t *testing.T) {
	s := fig2(t)
	q := pattern.MustParse(figure4)
	a := NewAnalyzer(s, q, Exact)

	restaurant := nodeByLabel(t, q, "restaurant")
	// Section 5: "we can discard all the getNearbyMuseums [...] since they
	// return museum elements, and hence cannot satisfy the subquery
	// //restaurant[...]".
	if a.FunctionSatisfies("getNearbyMuseums", restaurant) {
		t.Error("getNearbyMuseums must not satisfy the restaurant subquery")
	}
	if !a.FunctionSatisfies("getNearbyRestos", restaurant) {
		t.Error("getNearbyRestos must satisfy the restaurant subquery")
	}
	// getHotels can produce whole qualifying hotels (through derived
	// instances: rating may come from a nested getRating call).
	hotel := nodeByLabel(t, q, "hotel")
	if !a.FunctionSatisfies("getHotels", hotel) {
		t.Error("getHotels must satisfy the hotel subquery")
	}
	// In the schema, getRating calls sit inside rating elements in place
	// of the value, so the query node they are probed against is the
	// value leaf "*****" — which getRating's data output satisfies.
	rating := nodeByLabel(t, q, "rating")
	leaf := rating.Children[0]
	if !a.FunctionSatisfies("getRating", leaf) {
		t.Error("getRating must satisfy the rating value leaf")
	}
	// And a whole rating element cannot be provided by getRating (data
	// output) nor by getNearbyRestos (restaurant output) at that child
	// position.
	if a.FunctionSatisfies("getNearbyRestos", rating) {
		t.Error("getNearbyRestos must not satisfy the rating subquery")
	}
	if a.FunctionSatisfies("getRating", rating) {
		t.Error("getRating outputs a bare value, not a rating element")
	}
}

func TestSatisfiabilityDerivedInstances(t *testing.T) {
	// f returns g-calls only; g returns the wanted element. f satisfies
	// the query only through the derived (doubly expanded) instance.
	s := MustParse(`
functions:
  f = [in: data, out: g]
  g = [in: data, out: wanted]
elements:
  wanted = data
`)
	q := pattern.MustParse(`/r/wanted`)
	a := NewAnalyzer(s, q, Exact)
	w := nodeByLabel(t, q, "wanted")
	if !a.FunctionSatisfies("f", w) {
		t.Error("f must satisfy wanted through g's expansion")
	}
	if !a.FunctionSatisfies("g", w) {
		t.Error("g must satisfy wanted directly")
	}
}

func TestSatisfiabilityRecursiveSchema(t *testing.T) {
	// A function whose output may embed calls to itself: the fixpoint
	// must terminate and the reachable symbols must be found.
	s := MustParse(`
functions:
  crawl = [in: data, out: page*]
elements:
  page = title.(link|crawl)*
  title = data
  link = data
`)
	q := pattern.MustParse(`/r//page[title]//link`)
	a := NewAnalyzer(s, q, Exact)
	link := nodeByLabel(t, q, "link")
	if !a.FunctionSatisfies("crawl", link) {
		t.Error("crawl reaches link through recursive expansion")
	}
}

func TestEdgeKindMatters(t *testing.T) {
	s := fig2(t)
	// Child edge: getHotels plugs hotel trees at the call position, so a
	// child-edge rating node cannot be satisfied (hotel ≠ rating)...
	qChild := pattern.MustParse(`/hotels/rating`)
	a := NewAnalyzer(s, qChild, Exact)
	rating := nodeByLabel(t, qChild, "rating")
	if a.FunctionSatisfies("getHotels", rating) {
		t.Error("child-edge rating must not be satisfied by getHotels")
	}
	// ...but a descendant-edge rating is: hotels contain ratings below.
	qDesc := pattern.MustParse(`/hotels//rating`)
	a = NewAnalyzer(s, qDesc, Exact)
	rating = nodeByLabel(t, qDesc, "rating")
	if !a.FunctionSatisfies("getHotels", rating) {
		t.Error("descendant-edge rating must be satisfied by getHotels")
	}
}

func TestFuncQueryNodes(t *testing.T) {
	s := fig2(t)
	// A query function node getRating() is satisfied by getRating itself
	// (unexpanded) and by getHotels (whose derived instances contain
	// getRating calls inside rating elements — wait, rating = data |
	// getRating, and hotel contains rating, so a getRating *call node*
	// appears in derived instances of getHotels at depth ≥ 1).
	q := pattern.MustParse(`/hotels//getRating()`)
	a := NewAnalyzer(s, q, Exact)
	var fnode *pattern.Node
	for _, n := range q.Nodes() {
		if n.Kind == pattern.Func {
			fnode = n
		}
	}
	if !a.FunctionSatisfies("getRating", fnode) {
		t.Error("getRating() satisfied by getRating directly")
	}
	if !a.FunctionSatisfies("getHotels", fnode) {
		t.Error("getRating() reachable in getHotels derived instances")
	}
	if a.FunctionSatisfies("getNearbyMuseums", fnode) {
		t.Error("museums never contain getRating calls")
	}
}

func TestExactVsLenient(t *testing.T) {
	// Content model (a|b): a word contains a or b, never both. A query
	// requiring both children is exactly unsatisfiable but leniently
	// satisfiable (the graph schema ignores the exclusive choice).
	s := MustParse(`
functions:
  f = [in: data, out: e]
elements:
  e = a|b
  a = data
  b = data
`)
	q := pattern.MustParse(`/r/e[a][b]`)
	e := nodeByLabel(t, q, "e")
	if NewAnalyzer(s, q, Exact).FunctionSatisfies("f", e) {
		t.Error("exact: e cannot have both a and b children")
	}
	if !NewAnalyzer(s, q, Lenient).FunctionSatisfies("f", e) {
		t.Error("lenient: graph schema must admit both children")
	}
	// Cardinality: e2 = a (exactly one a); two a-children are fine for an
	// embedding (homomorphism, both map to the same child).
	s2 := MustParse(`
functions:
  f = [in: data, out: e2]
elements:
  e2 = a
  a = data
`)
	q2 := pattern.MustParse(`/r/e2[a][a/"x"]`)
	e2 := nodeByLabel(t, q2, "e2")
	if !NewAnalyzer(s2, q2, Exact).FunctionSatisfies("f", e2) {
		t.Error("two query children may share one document child")
	}
}

func TestLenientIsSuperset(t *testing.T) {
	s := fig2(t)
	q := pattern.MustParse(figure4)
	exact := NewAnalyzer(s, q, Exact)
	lenient := NewAnalyzer(s, q, Lenient)
	for _, v := range q.Nodes() {
		if v.Kind == pattern.Root {
			continue
		}
		for _, fn := range s.FunctionNames() {
			if exact.FunctionSatisfies(fn, v) && !lenient.FunctionSatisfies(fn, v) {
				t.Errorf("lenient rejected (%s, %s) accepted by exact", fn, q.Sub(v))
			}
		}
	}
}

func TestUnknownFunctionIsOptimistic(t *testing.T) {
	s := fig2(t)
	q := pattern.MustParse(figure4)
	a := NewAnalyzer(s, q, Exact)
	if !a.FunctionSatisfies("mystery", nodeByLabel(t, q, "restaurant")) {
		t.Error("functions without a signature must satisfy everything")
	}
}

func TestUnknownElementIsOptimistic(t *testing.T) {
	// f returns blob elements whose type is not declared: anything could
	// be below them.
	s := MustParse(`
functions:
  f = [in: data, out: blob]
elements:
`)
	q := pattern.MustParse(`/r/x[y]`)
	a := NewAnalyzer(s, q, Exact)
	if !a.FunctionSatisfies("f", nodeByLabel(t, q, "x")) {
		t.Error("undeclared output element must be treated optimistically")
	}
}

func TestOrQueryNodes(t *testing.T) {
	s := fig2(t)
	q := pattern.MustParse(`/hotels/hotel[(rating|museum)]`)
	a := NewAnalyzer(s, q, Exact)
	hotel := nodeByLabel(t, q, "hotel")
	// hotel content has rating (first OR branch), so satisfiable.
	if !a.FunctionSatisfies("getHotels", hotel) {
		t.Error("OR should be satisfied through the rating branch")
	}
}

func TestFunctionsSatisfying(t *testing.T) {
	s := fig2(t)
	q := pattern.MustParse(figure4)
	a := NewAnalyzer(s, q, Exact)
	got := a.FunctionsSatisfying(nodeByLabel(t, q, "restaurant"))
	// restaurant is reached through a descendant edge, so getHotels also
	// qualifies: a getHotels call below nearby would return hotels whose
	// own nearby zones contain restaurants — descendants of the outer
	// nearby. getNearbyRestos provides restaurants directly.
	if len(got) != 2 || got[0] != "getHotels" || got[1] != "getNearbyRestos" {
		t.Fatalf("FunctionsSatisfying(restaurant) = %v, want [getHotels getNearbyRestos]", got)
	}
}

func TestElementSatisfies(t *testing.T) {
	s := fig2(t)
	q := pattern.MustParse(figure4)
	a := NewAnalyzer(s, q, Exact)
	if !a.ElementSatisfies("restaurant", nodeByLabel(t, q, "restaurant")) {
		t.Error("restaurant element satisfies the restaurant subquery")
	}
	if a.ElementSatisfies("museum", nodeByLabel(t, q, "restaurant")) {
		t.Error("museum element must not satisfy the restaurant subquery")
	}
}

func TestDataLeafRules(t *testing.T) {
	s := fig2(t)
	q := pattern.MustParse(`/hotels/hotel/name/"Best Western"`)
	a := NewAnalyzer(s, q, Exact)
	// getRating outputs bare data; it satisfies the value leaf.
	leaf := nodeByLabel(t, q, "Best Western")
	if !a.FunctionSatisfies("getRating", leaf) {
		t.Error("data output satisfies a value leaf")
	}
	// But data cannot satisfy a node that requires children.
	name := nodeByLabel(t, q, "name")
	if a.ElementSatisfies("address", name) {
		t.Error("address ≠ name")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("garbage without sections")
}

// TestParsersNeverPanic feeds the schema and regex syntax random input.
func TestParsersNeverPanic(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("Parse(%q) panicked: %v", input, r)
				ok = false
			}
		}()
		_, _ = Parse(input)
		_, _ = Parse("functions:\n  f = [in: " + input + ", out: data]")
		_, _ = Parse("elements:\n  e = " + input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
