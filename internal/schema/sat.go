package schema

import (
	"sort"

	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/regex"
)

// Mode selects the satisfiability algorithm.
type Mode uint8

const (
	// Exact is the algorithm of Section 5: it extends the Milo–Suciu
	// satisfiability test to *derived* instances of the output types
	// (outputs of outputs, recursively) and decides content models
	// precisely — worst-case exponential in the query branching (the
	// paper proves the problem NP-hard), but exact.
	Exact Mode = iota
	// Lenient is the relaxation of Section 6.1: content models are
	// collapsed to child-symbol sets (a graph schema in the spirit of
	// dataguides), ignoring cardinality and order. Polynomial, and sound
	// in the lenient direction: everything exactly satisfiable remains
	// satisfiable, some unsatisfiable pairs slip through.
	Lenient
)

// Analyzer decides, for a fixed schema and query, which functions satisfy
// which query subtrees (Definition 6 of the paper). It is the pruning
// component of the refined NFQs of Section 5.
//
// The analysis computes the least fixpoint of two mutually recursive
// relations over (symbol, query node) pairs:
//
//	sat(s, v)  — some tree derived from symbol s matches the query
//	             subtree rooted at v, with v at the tree's root;
//	desc(s, v) — some tree derived from s contains such a match at the
//	             root or strictly below.
//
// Function symbols recurse through their output types, which is what makes
// the instances "derived". Symbols not declared in the schema are treated
// optimistically (they satisfy everything): the paper's relevance notion
// is optimistic, and an unknown service may return anything.
type Analyzer struct {
	schema *Schema
	mode   Mode
	q      *pattern.Pattern

	symbols  []string
	symIndex map[string]int

	// usefulOut[f] / content info per element, precompiled.
	usefulOut  map[string][]string
	contentNFA map[string]*regex.NFA
	contentSym map[string][]string // lenient child-symbol sets

	sat  [][]bool // [symbol][nodeID]
	desc [][]bool

	// ContentChecks counts content-model walks, for the E6 experiment.
	ContentChecks int
}

// NewAnalyzer builds the satisfiability tables for the given schema and
// query. Construction runs the fixpoint; queries are O(1) afterwards.
func NewAnalyzer(s *Schema, q *pattern.Pattern, mode Mode) *Analyzer {
	a := &Analyzer{
		schema:     s,
		mode:       mode,
		q:          q,
		symIndex:   map[string]int{},
		usefulOut:  map[string][]string{},
		contentNFA: map[string]*regex.NFA{},
		contentSym: map[string][]string{},
	}
	for name := range s.Elements {
		a.symbols = append(a.symbols, name)
	}
	for name := range s.Functions {
		a.symbols = append(a.symbols, name)
	}
	a.symbols = append(a.symbols, DataSymbol)
	sort.Strings(a.symbols)
	for i, sym := range a.symbols {
		a.symIndex[sym] = i
	}
	for name, sig := range s.Functions {
		a.usefulOut[name] = usefulSymbols(sig.Out)
	}
	for name, content := range s.Elements {
		a.contentNFA[name] = regex.Compile(content)
		a.contentSym[name] = sortedSet(content.Symbols())
	}
	n := len(q.Nodes())
	a.sat = make([][]bool, len(a.symbols))
	a.desc = make([][]bool, len(a.symbols))
	for i := range a.symbols {
		a.sat[i] = make([]bool, n)
		a.desc[i] = make([]bool, n)
	}
	a.fixpoint()
	return a
}

func usefulSymbols(e regex.Expr) []string {
	syms, _ := regex.Compile(e).UsefulSymbols()
	return sortedSet(syms)
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// fixpoint iterates the monotone rules until the tables stabilise.
func (a *Analyzer) fixpoint() {
	for changed := true; changed; {
		changed = false
		for si, sym := range a.symbols {
			for _, v := range a.q.Nodes() {
				if v.Kind == pattern.Root {
					continue
				}
				if !a.sat[si][v.ID] && a.satRule(sym, v) {
					a.sat[si][v.ID] = true
					changed = true
				}
				if !a.desc[si][v.ID] && a.descRule(sym, v) {
					a.desc[si][v.ID] = true
					changed = true
				}
			}
		}
	}
}

// satOf looks up sat(s, v), resolving unknown symbols optimistically.
func (a *Analyzer) satOf(sym string, v *pattern.Node) bool {
	if i, ok := a.symIndex[sym]; ok {
		return a.sat[i][v.ID]
	}
	return a.unknownOK(v)
}

func (a *Analyzer) descOf(sym string, v *pattern.Node) bool {
	if i, ok := a.symIndex[sym]; ok {
		return a.desc[i][v.ID]
	}
	return a.unknownOK(v)
}

// unknownOK is the optimistic verdict for symbols missing from the
// schema: an element of unknown type or an undeclared service may produce
// anything, so it can satisfy any data subtree; a function query node is
// only matched by function symbols, which are always declared.
func (a *Analyzer) unknownOK(v *pattern.Node) bool {
	return v.Kind != pattern.Func
}

func (a *Analyzer) satRule(sym string, v *pattern.Node) bool {
	switch v.Kind {
	case pattern.Or:
		for _, alt := range v.Children {
			if a.satOf(sym, alt) {
				return true
			}
		}
		return false
	case pattern.Func:
		if !a.schema.IsFunction(sym) {
			return false
		}
		if v.Label == pattern.AnyFunc || v.Label == sym {
			return true // the call node itself matches, unexpanded
		}
		for _, t := range a.usefulOut[sym] {
			if a.satOf(t, v) {
				return true
			}
		}
		return false
	case pattern.Const, pattern.Star, pattern.Var:
		switch {
		case sym == DataSymbol:
			return len(v.Children) == 0
		case a.schema.IsElement(sym):
			if v.Kind == pattern.Const && v.Label != sym {
				return false
			}
			return a.contentSatisfied(sym, v.Children)
		case a.schema.IsFunction(sym):
			for _, t := range a.usefulOut[sym] {
				if a.satOf(t, v) {
					return true
				}
			}
			return false
		}
	}
	return false
}

func (a *Analyzer) descRule(sym string, v *pattern.Node) bool {
	if a.satOf(sym, v) {
		return true
	}
	switch {
	case sym == DataSymbol:
		return false // data values have no descendants
	case a.schema.IsElement(sym):
		for _, t := range a.contentSym[sym] {
			if a.descOf(t, v) {
				return true
			}
		}
		return false
	case a.schema.IsFunction(sym):
		// Expansion plugs the output trees at the call's own position,
		// so depth is preserved: descend through the output symbols.
		for _, t := range a.usefulOut[sym] {
			if a.descOf(t, v) {
				return true
			}
		}
		return false
	}
	return false
}

// contentSatisfied decides whether some word of the element's content
// model provides, per child requirement, a position symbol that satisfies
// it — jointly for all requirements in Exact mode (an NFA walk carrying
// the set of still-open requirements), independently in Lenient mode.
//
// A requirement reached through a Child edge must be satisfied at the
// position itself (sat); through a Desc edge, at the position or below
// (desc). Note that one position may satisfy several requirements:
// embeddings are homomorphisms, not injections.
func (a *Analyzer) contentSatisfied(element string, reqs []*pattern.Node) bool {
	a.ContentChecks++
	reqOK := func(sym string, req *pattern.Node) bool {
		if req.Edge == pattern.Desc {
			return a.descOf(sym, req)
		}
		return a.satOf(sym, req)
	}
	if a.mode == Lenient {
		for _, req := range reqs {
			ok := false
			for _, sym := range a.contentSym[element] {
				if reqOK(sym, req) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	// Exact: BFS over (NFA state, open-requirement mask).
	nfa := a.contentNFA[element]
	if len(reqs) > 30 {
		// Far beyond any realistic pattern; fall back to the lenient
		// check rather than building 2^k masks.
		saved := a.mode
		a.mode = Lenient
		ok := a.contentSatisfied(element, reqs)
		a.mode = saved
		return ok
	}
	full := (uint32(1) << len(reqs)) - 1
	type state struct {
		s    int
		open uint32
	}
	start := state{0, full}
	seen := map[state]bool{start: true}
	queue := []state{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.open == 0 && nfa.Accepting(cur.s) {
			return true
		}
		for _, e := range nfa.Edges(cur.s) {
			open := cur.open
			for i, req := range reqs {
				if open&(1<<i) != 0 && reqOK(e.Symbol, req) {
					open &^= 1 << i
				}
			}
			ns := state{e.To, open}
			if !seen[ns] {
				seen[ns] = true
				queue = append(queue, ns)
			}
		}
	}
	return false
}

// FunctionSatisfies implements Definition 6 for the subquery rooted at v:
// it reports whether some derived instance of fn's output type can match
// sub_v, plugged at the position the call occupies. The incoming edge of v
// decides whether the match must be at the plug position itself (child
// edge) or may be deeper (descendant edge). Functions missing from the
// schema satisfy everything, per the paper's untyped default.
func (a *Analyzer) FunctionSatisfies(fn string, v *pattern.Node) bool {
	if !a.schema.IsFunction(fn) {
		return true
	}
	if v.Edge == pattern.Desc {
		return a.descOf(fn, v)
	}
	return a.satOf(fn, v)
}

// FunctionsSatisfying returns the declared services whose output can
// contribute to the subquery rooted at v, sorted by name.
func (a *Analyzer) FunctionsSatisfying(v *pattern.Node) []string {
	var out []string
	for _, fn := range a.schema.FunctionNames() {
		if a.FunctionSatisfies(fn, v) {
			out = append(out, fn)
		}
	}
	return out
}

// ElementSatisfies reports sat(element, v); exported for tests and for
// tooling that inspects the analysis.
func (a *Analyzer) ElementSatisfies(element string, v *pattern.Node) bool {
	return a.satOf(element, v)
}
