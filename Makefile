# Developer checks. `make check` is the full gate: static vetting, a
# clean build, the whole suite under the race detector, and a short fuzz
# smoke of every fuzz target (seed corpora under testdata/fuzz always run
# as plain tests).

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race fuzz bench telemetry profile loadsmoke

check: vet build telemetry race fuzz loadsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/pattern/
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime $(FUZZTIME) ./internal/tree/
	$(GO) test -run '^$$' -fuzz FuzzProject -fuzztime $(FUZZTIME) ./internal/schema/
	$(GO) test -run '^$$' -fuzz FuzzGuideCodecRoundTrip -fuzztime $(FUZZTIME) ./internal/fguide/

# bench records the perf trajectory: the root benchmark suite, the E10
# incremental-evaluation, E11 invocation-pool, E13 streaming/projection,
# E14 warm-vs-cold repository, E16 trace-propagation/profile and E17
# planned-vs-static scheduling sweeps, and the E12 multi-tenant serving
# run, written to BENCH_E{10,11,12,13,14,16,17}.json. E16 reports the
# cross-process trace propagation overhead on the E11 HTTP shape
# (budget: ≤2% of wall); E17 pins the cost planner's speedup over static
# striping with bit-identical results.
bench:
	$(GO) test -bench . -benchmem .
	$(GO) run ./cmd/axmlbench -exp E10 -json BENCH_E10.json
	$(GO) run ./cmd/axmlbench -exp E11 -json BENCH_E11.json
	$(GO) run ./cmd/axmlload -self -clients 500 -requests 5000 -json BENCH_E12.json
	$(GO) run ./cmd/axmlbench -exp E13 -json BENCH_E13.json
	$(GO) run ./cmd/axmlbench -exp E14 -json BENCH_E14.json
	$(GO) run ./cmd/axmlbench -exp E16 -json BENCH_E16.json
	$(GO) run ./cmd/axmlbench -exp E17 -json BENCH_E17.json

# loadsmoke replays a small oracle-verified mixed workload through an
# in-process session server — the serving-layer gate in `make check` —
# streaming the distributed span trace as JSONL and snapshotting the
# per-service statistics profiles (both are CI artifacts). Outputs land
# in the ignored out/ directory, never the repo root.
# (No -json: the recorded BENCH_E12.json is the full `make bench` run.)
loadsmoke:
	mkdir -p out
	$(GO) run ./cmd/axmlload -self -clients 8 -requests 160 \
		-trace-out out/loadsmoke_trace.jsonl -stats-out out/loadsmoke_stats.json

microbench:
	$(GO) test -bench . -benchmem ./internal/pattern/
	$(GO) test -bench E10TelemetryOverhead -benchmem .
	$(GO) test -run TestE13AllocationRegression -count=1 ./internal/bench/

# telemetry gates the observability layer on its own: vet plus the
# race-detected tests of the tracer/metrics package and the two packages
# that feed it from concurrent code paths.
telemetry:
	$(GO) vet ./internal/telemetry/ ./internal/core/ ./internal/soap/
	$(GO) test -race -count=1 ./internal/telemetry/ ./internal/core/ ./internal/soap/

# profile captures CPU and heap profiles of the E10 incremental sweep
# together with its span trace and result table. Inspect with
# `go tool pprof cpu.pprof` / `go tool pprof heap.pprof`.
profile:
	$(GO) run ./cmd/axmlbench -exp E10 -quick \
		-cpuprofile cpu.pprof -memprofile heap.pprof \
		-json BENCH_E10.json -trace-out E10_trace.jsonl
