# Developer checks. `make check` is the full gate: static vetting, a
# clean build, the whole suite under the race detector, and a short fuzz
# smoke of both fuzz targets (seed corpora under testdata/fuzz always run
# as plain tests).

GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race fuzz bench

check: vet build race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/pattern/
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime $(FUZZTIME) ./internal/tree/

# bench records the perf trajectory: the root benchmark suite plus the
# E10 incremental-evaluation sweep written to BENCH_E10.json.
bench:
	$(GO) test -bench . -benchmem .
	$(GO) run ./cmd/axmlbench -exp E10 -json BENCH_E10.json

microbench:
	$(GO) test -bench . -benchmem ./internal/pattern/
