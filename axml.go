// Package axml is a Go implementation of Active XML lazy query
// evaluation, reproducing "Lazy Query Evaluation for Active XML"
// (Abiteboul, Benjelloun, Cautis, Manolescu, Milo, Preda — SIGMOD 2004).
//
// Active XML documents are XML documents whose content is partly
// extensional (ordinary elements) and partly intensional: embedded calls
// to Web services that, when invoked, are replaced in place by the data
// they return. Answering a query over such a document lazily means
// invoking only the calls whose results may contribute to the answer.
//
// The package is a facade over the implementation packages; the types it
// exposes are the library's stable API.
//
// # Quick start
//
//	doc, _ := axml.ParseDocument(data)        // XML with <axml:call> elements
//	q, _ := axml.ParseQuery(`/hotels/hotel[name="Best Western"]//restaurant[name=$X] -> $X`)
//	reg := axml.NewRegistry()
//	reg.Register(&axml.Service{Name: "getNearbyRestos", Handler: myHandler})
//	out, _ := axml.Evaluate(doc, q, reg, axml.Options{Strategy: axml.LazyNFQ})
//	for _, r := range out.Results { fmt.Println(r.Values["X"]) }
//
// See the examples directory for complete programs, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the reproduced evaluation.
package axml

import (
	"github.com/activexml/axml/internal/activation"
	"github.com/activexml/axml/internal/construct"
	"github.com/activexml/axml/internal/core"
	"github.com/activexml/axml/internal/fguide"
	"github.com/activexml/axml/internal/pattern"
	"github.com/activexml/axml/internal/schema"
	"github.com/activexml/axml/internal/service"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/store"
	"github.com/activexml/axml/internal/subscribe"
	"github.com/activexml/axml/internal/tree"
)

// Document model (see internal/tree).
type (
	// Document is an Active XML document: an ordered labelled tree whose
	// nodes are data nodes or embedded service calls.
	Document = tree.Document
	// Node is a single document node.
	Node = tree.Node
	// Binding maps pushed-query variables to values.
	Binding = tree.Binding
)

// Node kinds.
const (
	// ElementNode is a data node labelled with an element name.
	ElementNode = tree.Element
	// TextNode is a data leaf carrying a value.
	TextNode = tree.Text
	// CallNode is an embedded service call.
	CallNode = tree.Call
	// TuplesNode is the materialised result of a pushed call.
	TuplesNode = tree.Tuples
)

// NewElement returns a detached element node.
func NewElement(name string) *Node { return tree.NewElement(name) }

// NewText returns a detached text leaf.
func NewText(value string) *Node { return tree.NewText(value) }

// NewCall returns a detached service-call node with parameter subtrees.
func NewCall(service string, params ...*Node) *Node { return tree.NewCall(service, params...) }

// NewDocument wraps a root element into a document.
func NewDocument(root *Node) *Document { return tree.NewDocument(root) }

// ParseDocument reads an AXML document from XML; service calls are
// <axml:call service="name"> elements in the namespace
// "http://activexml.net/2004/calls".
func ParseDocument(data []byte) (*Document, error) { return tree.Unmarshal(data) }

// MarshalDocument serialises a document subtree as XML.
func MarshalDocument(n *Node) ([]byte, error) { return tree.Marshal(n) }

// MarshalDocumentIndent is MarshalDocument with indentation.
func MarshalDocumentIndent(n *Node) ([]byte, error) { return tree.MarshalIndent(n) }

// Queries (see internal/pattern).
type (
	// Query is a tree-pattern query: the core tree-matching fragment of
	// XPath/XQuery, with variables, value joins and result nodes.
	Query = pattern.Pattern
	// QueryResult is one element of a query's result.
	QueryResult = pattern.Result
)

// ParseQuery reads a query in the XPath-like syntax, e.g.
//
//	/hotels/hotel[name="Best Western"][rating="*****"]
//	    /nearby//restaurant[rating="*****"][name=$X][address=$Y] -> $X, $Y
func ParseQuery(s string) (*Query, error) { return pattern.Parse(s) }

// MustParseQuery is ParseQuery panicking on error, for literals.
func MustParseQuery(s string) *Query { return pattern.MustParse(s) }

// Snapshot evaluates the query on the document as-is, without invoking
// any service call — the snapshot semantics of the paper.
func Snapshot(doc *Document, q *Query) []QueryResult {
	rs, _ := pattern.Eval(doc, q)
	return rs
}

// Schemas (see internal/schema).
type (
	// Schema declares service signatures and element content models.
	Schema = schema.Schema
	// Signature is a service's input/output type.
	Signature = schema.Signature
)

// TypeMode selects the satisfiability algorithm for type-based pruning.
type TypeMode = schema.Mode

// Satisfiability modes for type-based pruning.
const (
	// ExactTypes is the exact satisfiability analysis of the paper's
	// Section 5.
	ExactTypes = schema.Exact
	// LenientTypes is the polynomial relaxation of Section 6.1.
	LenientTypes = schema.Lenient
)

// ParseSchema reads the DTD-like schema syntax of the paper's Figure 2.
func ParseSchema(s string) (*Schema, error) { return schema.Parse(s) }

// Services (see internal/service).
type (
	// Registry holds the invocable Web services.
	Registry = service.Registry
	// Service is one registered service.
	Service = service.Service
	// Handler computes a service's result forest.
	Handler = service.Handler
	// Response is the outcome of one invocation.
	Response = service.Response
	// Clock abstracts evaluation time; SimClock accumulates simulated
	// latencies without sleeping.
	Clock = service.Clock
	// SimClock is the virtual clock used by benchmarks.
	SimClock = service.SimClock
	// Fault is a classified invocation error (see doc/FAULTS.md).
	Fault = service.Fault
	// ErrorClass partitions invocation errors into permanent, transient
	// and timeout; only the latter two are retried.
	ErrorClass = service.ErrorClass
	// FaultSpec configures the deterministic fault injector.
	FaultSpec = service.FaultSpec
	// Faults is a seeded fault injector wrapping a registry.
	Faults = service.Faults
)

// Error classes.
const (
	// PermanentFault marks errors that retrying cannot fix.
	PermanentFault = service.Permanent
	// TransientFault marks passing failures worth retrying.
	TransientFault = service.Transient
	// TimeoutFault marks deadline expirations, also retryable.
	TimeoutFault = service.Timeout
)

// ClassOf extracts the error class from any error chain; unclassified
// errors are permanent.
func ClassOf(err error) ErrorClass { return service.ClassOf(err) }

// NewFaults builds a deterministic fault injector; wrap a registry with
// its Wrap method.
func NewFaults(spec FaultSpec) *Faults { return service.NewFaults(spec) }

// NewRegistry returns an empty service registry.
func NewRegistry() *Registry { return service.NewRegistry() }

// NewWallClock returns a real-time clock; when sleep is set, simulated
// latencies physically block.
func NewWallClock(sleep bool) Clock { return service.NewWallClock(sleep) }

// Engine (see internal/core).
type (
	// Options configures an evaluation: strategy, typing, layering,
	// parallelism, pushing, guide, budgets.
	Options = core.Options
	// Outcome is an evaluation's results plus accounting.
	Outcome = core.Outcome
	// Stats is the evaluation accounting.
	Stats = core.Stats
	// Strategy selects the invocation policy.
	Strategy = core.Strategy
	// TraceEvent is one engine step, delivered through Options.Trace.
	TraceEvent = core.TraceEvent
	// TraceFunc receives engine trace events.
	TraceFunc = core.TraceFunc
	// RetryPolicy configures per-call retries, backoff and deadlines
	// (Options.Retry; see doc/FAULTS.md).
	RetryPolicy = core.RetryPolicy
	// FailurePolicy decides what a call that exhausts its attempts does
	// to the evaluation (Options.Failure).
	FailurePolicy = core.FailurePolicy
	// CallFailure records one abandoned call under BestEffort
	// (Outcome.Failures).
	CallFailure = core.CallFailure
)

// Failure policies.
const (
	// FailFast aborts the evaluation on the first exhausted call.
	FailFast = core.FailFast
	// BestEffort records exhausted calls and keeps evaluating;
	// completeness is then re-derived from what actually failed.
	BestEffort = core.BestEffort
)

// Strategies.
const (
	// NaiveFixpoint invokes every call before evaluating.
	NaiveFixpoint = core.NaiveFixpoint
	// TopDownEager invokes calls on query paths one at a time.
	TopDownEager = core.TopDownEager
	// LazyLPQ prunes by position (linear path queries).
	LazyLPQ = core.LazyLPQ
	// LazyNFQ prunes by position and conditions (node-focused queries).
	LazyNFQ = core.LazyNFQ
	// LazyNFQTyped additionally prunes by service signatures.
	LazyNFQTyped = core.LazyNFQTyped
)

// Evaluate computes the full result of q over doc, invoking services from
// reg lazily according to the options. The document is materialised in
// place as calls are invoked; clone it first to keep the original.
func Evaluate(doc *Document, q *Query, reg *Registry, opt Options) (*Outcome, error) {
	return core.Evaluate(doc, q, reg, opt)
}

// Complete reports whether doc is complete for q (Definition 3 of the
// paper): no remaining call is relevant, so the snapshot result equals
// the full result. A non-nil schema uses the type-refined relevance of
// Section 5 with the given mode.
func Complete(doc *Document, q *Query, sch *Schema, mode TypeMode) (bool, error) {
	return core.Complete(doc, q, sch, mode)
}

// Relevant returns the calls of doc currently relevant for q, in document
// order. A non-nil schema refines relevance with service signatures.
func Relevant(doc *Document, q *Query, sch *Schema, mode TypeMode) ([]*Node, error) {
	return core.Relevant(doc, q, sch, mode)
}

// F-guides (see internal/fguide).
type (
	// FGuide is the function-call guide access structure of the paper's
	// Section 6.2. The engine builds one automatically under
	// Options.UseGuide; the type is exported for inspection and tooling.
	FGuide = fguide.Guide
)

// BuildFGuide constructs the F-guide of a document.
func BuildFGuide(doc *Document) *FGuide { return fguide.Build(doc) }

// HTTP transport (see internal/soap).
type (
	// HTTPServer serves a registry over HTTP with an XML envelope.
	HTTPServer = soap.Server
	// HTTPClient invokes remote AXML service providers.
	HTTPClient = soap.Client
	// ServiceInfo describes one remote service.
	ServiceInfo = soap.ServiceInfo
)

// NewHTTPServer wraps a registry into an http.Handler; sleepLatency makes
// the server block for each service's configured latency.
func NewHTTPServer(reg *Registry, sleepLatency bool) *HTTPServer {
	return soap.NewServer(reg, sleepLatency)
}

// RecursivePush wraps every service of reg so pushed queries are honoured
// even by services whose results embed further calls: the provider
// materialises its own result first (the ActiveXML peer deployment of the
// paper's Section 7). maxCalls bounds the provider-side materialisation.
func RecursivePush(reg *Registry, maxCalls int) *Registry {
	return soap.RecursivePush(reg, maxCalls)
}

// RecursivePushWorkers is RecursivePush with the provider-side
// materialisation invoking up to workers embedded calls concurrently per
// fixpoint round; the materialised forest is identical for every pool
// width (`axmlserver -invoke-workers`).
func RecursivePushWorkers(reg *Registry, maxCalls, workers int) *Registry {
	return soap.RecursivePushWorkers(reg, maxCalls, workers)
}

// Activation policies (see internal/activation).
type (
	// ActivationController applies per-service activation policies
	// (immediate, periodic, manual — lazy being Evaluate's job) to the
	// calls of one document.
	ActivationController = activation.Controller
	// ActivationPolicy is one service's activation policy.
	ActivationPolicy = activation.Policy
	// ActivationMode discriminates the policies.
	ActivationMode = activation.Mode
)

// Activation modes.
const (
	// ActivateLazily leaves invocation to query evaluation.
	ActivateLazily = activation.Lazy
	// ActivateImmediately fires calls at the next controller sweep.
	ActivateImmediately = activation.Immediate
	// ActivatePeriodically refreshes calls on an interval.
	ActivatePeriodically = activation.Periodic
	// ActivateManually fires calls only through Activate.
	ActivateManually = activation.Manual
)

// NewActivationController wires a document to a registry with all
// policies defaulting to lazy.
func NewActivationController(doc *Document, reg *Registry) *ActivationController {
	return activation.NewController(doc, reg)
}

// Document repository (see internal/store).
type (
	// Store is a file-backed repository of AXML documents with atomic
	// writes.
	Store = store.Store
)

// OpenStore prepares a document repository at dir.
func OpenStore(dir string) (*Store, error) { return store.Open(dir) }

// Result construction (see internal/construct).
type (
	// Template is an XML result template with {$X} placeholders,
	// instantiated once per query result — the return-clause half of the
	// XQuery core.
	Template = construct.Template
)

// ParseTemplate reads an XML forest whose text may embed {$X}
// placeholders referencing query variables.
func ParseTemplate(src string) (*Template, error) { return construct.ParseTemplate(src) }

// ConstructDocument instantiates the template for every result and wraps
// the forests under a fresh root element.
func ConstructDocument(rootName string, t *Template, results []QueryResult) (*Document, error) {
	return construct.Document(rootName, t, results)
}

// Continuous queries (see internal/subscribe).
type (
	// Watcher re-evaluates a query as the document's intensional parts
	// evolve and reports result-set changes.
	Watcher = subscribe.Watcher
	// ResultChange describes how a watched result set moved.
	ResultChange = subscribe.Change
)

// Watch registers a continuous query over a controlled document. Drive it
// with Watcher.Poll (after controller refreshes) or Watcher.Start.
func Watch(ctl *ActivationController, q *Query, reg *Registry, opt Options, fn func(ResultChange)) *Watcher {
	return subscribe.Watch(ctl, q, reg, opt, fn)
}
