// Distributed: lazy evaluation against a real HTTP service provider with
// query pushing (Section 7 of the paper). The program starts an in-process
// provider (the same server cmd/axmlserver runs), discovers its services
// through the descriptor endpoint, and evaluates the hotels query twice —
// with and without pushing — to show the transfer saving.
//
// Point it at an external provider with: go run ./examples/distributed http://host:8080
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"time"

	axml "github.com/activexml/axml"
	"github.com/activexml/axml/internal/soap"
	"github.com/activexml/axml/internal/workload"
)

func main() {
	spec := workload.DefaultSpec()
	spec.PushCapable = true
	spec.RestosPerCall = 60 // large results make pushing worthwhile
	spec.FiveStarRestos = 2
	spec.Latency = 5 * time.Millisecond
	w := workload.Hotels(spec)

	baseURL := ""
	if len(os.Args) > 1 {
		baseURL = os.Args[1]
		fmt.Printf("using external provider %s\n", baseURL)
	} else {
		srv := httptest.NewServer(axml.NewHTTPServer(w.Registry, true))
		defer srv.Close()
		baseURL = srv.URL
		fmt.Printf("started in-process provider at %s\n", baseURL)
	}

	client := &soap.Client{BaseURL: baseURL}
	infos, err := client.Describe()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provider offers %d services:\n", len(infos))
	for _, i := range infos {
		fmt.Printf("  %-18s push=%-5t latency=%v\n", i.Name, i.CanPush, i.Latency)
	}

	reg, err := client.RegistryFor()
	if err != nil {
		log.Fatal(err)
	}

	for _, push := range []bool{false, true} {
		start := time.Now()
		out, err := axml.Evaluate(w.Doc.Clone(), w.Query, reg, axml.Options{
			Strategy: axml.LazyNFQTyped,
			Schema:   w.Schema,
			Push:     push,
			Layering: true,
			Clock:    axml.NewWallClock(false),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\npush=%t: %d results, %d HTTP calls (%d pushed), %d bytes on the wire, %v wall time\n",
			push, len(out.Results), out.Stats.CallsInvoked, out.Stats.PushedCalls,
			out.Stats.BytesFetched, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\npushing ships the restaurant subquery with each getNearbyRestos call;")
	fmt.Println("the provider returns binding tuples instead of full restaurant lists.")
}
