// Nightlife: the paper's introduction scenario. A city guide document
// covers movies and restaurants, both partly intensional. The query
// /goingout/movies//show[title="The Hours"]/schedule only concerns
// movies: every call under /goingout/restaurants is pruned by position
// alone, and within movies, signatures prune the review services.
package main

import (
	"fmt"
	"log"

	axml "github.com/activexml/axml"
)

const guide = `
<goingout>
  <movies>
    <theater>
      <name>Grand Rex</name>
      <axml:call service="getShows"><theater>Grand Rex</theater></axml:call>
      <axml:call service="getReviews"><theater>Grand Rex</theater></axml:call>
    </theater>
    <theater>
      <name>MK2</name>
      <axml:call service="getShows"><theater>MK2</theater></axml:call>
    </theater>
  </movies>
  <restaurants>
    <axml:call service="getRestaurants"><area>center</area></axml:call>
    <axml:call service="getRestaurants"><area>north</area></axml:call>
  </restaurants>
</goingout>`

const signatures = `
functions:
  getShows       = [in: data, out: show*]
  getReviews     = [in: data, out: review*]
  getRestaurants = [in: data, out: restaurant*]
elements:
  show       = title.schedule
  review     = title.stars
  restaurant = name.address
  title      = data
  schedule   = data
  stars      = data
  name       = data
  address    = data
`

func main() {
	doc, err := axml.ParseDocument([]byte(guide))
	if err != nil {
		log.Fatal(err)
	}
	sch, err := axml.ParseSchema(signatures)
	if err != nil {
		log.Fatal(err)
	}

	reg := axml.NewRegistry()
	invoked := map[string]int{}
	count := func(name string, h axml.Handler) axml.Handler {
		return func(params []*axml.Node) ([]*axml.Node, error) {
			invoked[name]++
			return h(params)
		}
	}
	reg.Register(&axml.Service{Name: "getShows", Handler: count("getShows",
		func(params []*axml.Node) ([]*axml.Node, error) {
			theater := params[0].Text()
			mk := func(title, at string) *axml.Node {
				s := axml.NewElement("show")
				s.Append(axml.NewElement("title")).Append(axml.NewText(title))
				s.Append(axml.NewElement("schedule")).Append(axml.NewText(at))
				return s
			}
			if theater == "Grand Rex" {
				return []*axml.Node{mk("The Hours", "20:30"), mk("Solaris", "22:00")}, nil
			}
			return []*axml.Node{mk("The Hours", "18:00")}, nil
		})})
	reg.Register(&axml.Service{Name: "getReviews", Handler: count("getReviews",
		func([]*axml.Node) ([]*axml.Node, error) {
			r := axml.NewElement("review")
			r.Append(axml.NewElement("title")).Append(axml.NewText("The Hours"))
			r.Append(axml.NewElement("stars")).Append(axml.NewText("4"))
			return []*axml.Node{r}, nil
		})})
	reg.Register(&axml.Service{Name: "getRestaurants", Handler: count("getRestaurants",
		func([]*axml.Node) ([]*axml.Node, error) {
			r := axml.NewElement("restaurant")
			r.Append(axml.NewElement("name")).Append(axml.NewText("In Delis"))
			r.Append(axml.NewElement("address")).Append(axml.NewText("2nd Ave."))
			return []*axml.Node{r}, nil
		})})

	q, err := axml.ParseQuery(`/goingout/movies//show[title="The Hours"]/schedule/$T -> $T`)
	if err != nil {
		log.Fatal(err)
	}

	out, err := axml.Evaluate(doc, q, reg, axml.Options{
		Strategy: axml.LazyNFQTyped,
		Schema:   sch,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(`"The Hours" plays at:`)
	for _, r := range out.Results {
		fmt.Printf("  %s\n", r.Values["T"])
	}
	fmt.Println("\nservices invoked:")
	for _, name := range reg.Names() {
		fmt.Printf("  %-15s %d call(s)\n", name, invoked[name])
	}
	fmt.Println("\ngetRestaurants was pruned by position (wrong subtree),")
	fmt.Println("getReviews by signature (reviews cannot contain schedules).")
}
