// Travel: the paper's running example (Figures 1–4) end to end, comparing
// every evaluation strategy on the same hotels document and reporting the
// quantities the paper's evaluation measures: calls invoked, sequential
// rounds, simulated end-to-end time and bytes transferred.
package main

import (
	"fmt"
	"log"
	"os"

	axml "github.com/activexml/axml"
	"github.com/activexml/axml/internal/workload"
)

func main() {
	// The generated world is the running example scaled up: hotels with
	// extensional and intensional parts; getHotels hides more hotels;
	// museum and extras services are the irrelevant-call population.
	spec := workload.DefaultSpec()
	w := workload.Hotels(spec)

	fmt.Printf("document: %d nodes, %d embedded calls (plus %d reachable through results)\n",
		w.Doc.Size(), len(w.Doc.Calls()), workload.TotalCalls(spec)-len(w.Doc.Calls()))
	fmt.Printf("query:    %s\n\n", w.Query)

	configs := []struct {
		name string
		opt  axml.Options
	}{
		{"naive fixpoint", axml.Options{Strategy: axml.NaiveFixpoint}},
		{"top-down eager", axml.Options{Strategy: axml.TopDownEager}},
		{"lazy LPQ (positions)", axml.Options{Strategy: axml.LazyLPQ}},
		{"lazy NFQ (conditions)", axml.Options{Strategy: axml.LazyNFQ}},
		{"lazy NFQ + types", axml.Options{Strategy: axml.LazyNFQTyped, Schema: w.Schema}},
		{"  + layers + parallel", axml.Options{
			Strategy: axml.LazyNFQTyped, Schema: w.Schema, Layering: true, Parallel: true}},
		{"  + F-guide", axml.Options{
			Strategy: axml.LazyNFQTyped, Schema: w.Schema, Layering: true, Parallel: true, UseGuide: true}},
	}

	fmt.Printf("%-24s %8s %8s %12s %10s %8s\n",
		"strategy", "calls", "rounds", "virt-time", "bytes", "results")
	for _, c := range configs {
		out, err := axml.Evaluate(w.Doc.Clone(), w.Query, w.Registry, c.opt)
		if err != nil {
			log.Fatal(err)
		}
		if len(out.Results) != w.ExpectedResults {
			log.Fatalf("%s: %d results, want %d", c.name, len(out.Results), w.ExpectedResults)
		}
		fmt.Printf("%-24s %8d %8d %12v %10d %8d\n",
			c.name, out.Stats.CallsInvoked, out.Stats.Rounds,
			out.Stats.VirtualTime, out.Stats.BytesFetched, len(out.Results))
	}

	// Show one concrete answer and the materialised fragment around it.
	doc := w.Doc.Clone()
	out, err := axml.Evaluate(doc, w.Query, w.Registry,
		axml.Options{Strategy: axml.LazyNFQTyped, Schema: w.Schema})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst answers (X=restaurant, Y=address):\n")
	for i, r := range out.Results {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", len(out.Results)-3)
			break
		}
		fmt.Printf("  X=%q Y=%q\n", r.Values["X"], r.Values["Y"])
	}

	if len(os.Args) > 1 && os.Args[1] == "-dump" {
		b, err := axml.MarshalDocumentIndent(doc.Root)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmaterialised document:\n%s\n", b)
	} else {
		fmt.Printf("\n(the document was only partially materialised: %d nodes; run with -dump to see it)\n",
			doc.Size())
	}
}
