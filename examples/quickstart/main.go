// Quickstart: parse an Active XML document, register a Web service, and
// evaluate a query lazily — only the calls that can contribute to the
// answer are invoked.
package main

import (
	"fmt"
	"log"

	axml "github.com/activexml/axml"
)

// A weather site whose forecast section is intensional: the city pages
// embed calls to a forecast service.
const document = `
<weather>
  <city>
    <name>Paris</name>
    <forecast><axml:call service="getForecast"><city>Paris</city></axml:call></forecast>
  </city>
  <city>
    <name>Oslo</name>
    <forecast><axml:call service="getForecast"><city>Oslo</city></axml:call></forecast>
  </city>
</weather>`

func main() {
	doc, err := axml.ParseDocument([]byte(document))
	if err != nil {
		log.Fatal(err)
	}

	// getForecast returns a couple of day elements for the given city.
	reg := axml.NewRegistry()
	reg.Register(&axml.Service{
		Name: "getForecast",
		Handler: func(params []*axml.Node) ([]*axml.Node, error) {
			city := params[0].Text()
			mk := func(day, sky string) *axml.Node {
				d := axml.NewElement("day")
				d.Append(axml.NewElement("name")).Append(axml.NewText(day))
				d.Append(axml.NewElement("sky")).Append(axml.NewText(sky))
				return d
			}
			if city == "Paris" {
				return []*axml.Node{mk("saturday", "sunny"), mk("sunday", "cloudy")}, nil
			}
			return []*axml.Node{mk("saturday", "snow"), mk("sunday", "snow")}, nil
		},
	})

	// Ask for Paris's sunny days. The Oslo forecast call is irrelevant
	// for this query — lazy evaluation never invokes it.
	q, err := axml.ParseQuery(`/weather/city[name="Paris"]/forecast/day[sky="sunny"][name=$D] -> $D`)
	if err != nil {
		log.Fatal(err)
	}

	out, err := axml.Evaluate(doc, q, reg, axml.Options{Strategy: axml.LazyNFQ})
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range out.Results {
		fmt.Printf("sunny in Paris on %s\n", r.Values["D"])
	}
	fmt.Printf("calls invoked: %d of %d embedded (the Oslo call was pruned)\n",
		out.Stats.CallsInvoked, 2)
}
