// Newsfeed: activation policies beyond lazy evaluation. An aggregation
// page mixes content with different freshness needs — the paper's Section
// 1 notes that in the ActiveXML system "a particular service call may be
// invoked at regular time intervals or only upon explicit user
// intervention", with *lazy* calls being the paper's subject. This
// program runs all four policies side by side:
//
//   - the masthead is fetched immediately (once, at startup),
//   - the headlines ticker refreshes periodically,
//   - the archive section loads only on explicit request,
//   - the weather section stays lazy: only a query touches it.
package main

import (
	"fmt"
	"log"
	"time"

	axml "github.com/activexml/axml"
)

const page = `
<page>
  <masthead><axml:call service="getMasthead"/></masthead>
  <headlines><axml:call service="getHeadlines"/></headlines>
  <archive><axml:call service="getArchive"/></archive>
  <weather>
    <city><name>Paris</name><axml:call service="getWeather">Paris</axml:call></city>
    <city><name>Oslo</name><axml:call service="getWeather">Oslo</axml:call></city>
  </weather>
</page>`

func main() {
	doc, err := axml.ParseDocument([]byte(page))
	if err != nil {
		log.Fatal(err)
	}

	edition := 0
	reg := axml.NewRegistry()
	text := func(label string, fn func() string) {
		reg.Register(&axml.Service{Name: label, Handler: func([]*axml.Node) ([]*axml.Node, error) {
			v := axml.NewElement("item")
			v.Append(axml.NewText(fn()))
			return []*axml.Node{v}, nil
		}})
	}
	text("getMasthead", func() string { return "The Daily AXML" })
	text("getHeadlines", func() string {
		edition++
		return fmt.Sprintf("edition #%d", edition)
	})
	text("getArchive", func() string { return "42 archived stories" })
	reg.Register(&axml.Service{Name: "getWeather", Handler: func(params []*axml.Node) ([]*axml.Node, error) {
		sky := axml.NewElement("sky")
		if params[0].Text() == "Paris" {
			sky.Append(axml.NewText("sunny"))
		} else {
			sky.Append(axml.NewText("snow"))
		}
		return []*axml.Node{sky}, nil
	}})

	ctl := axml.NewActivationController(doc, reg)
	must(ctl.SetPolicy("getMasthead", axml.ActivationPolicy{Mode: axml.ActivateImmediately}))
	must(ctl.SetPolicy("getHeadlines", axml.ActivationPolicy{Mode: axml.ActivatePeriodically, Interval: 30 * time.Millisecond}))
	must(ctl.SetPolicy("getArchive", axml.ActivationPolicy{Mode: axml.ActivateManually}))
	// getWeather stays lazy.

	if _, err := ctl.Sweep(100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after startup sweep: masthead = %q\n", section(doc, "masthead"))

	ctl.Start(10 * time.Millisecond)
	defer ctl.Stop()
	time.Sleep(100 * time.Millisecond)
	must(ctl.WithDocument(func(d *axml.Document) error {
		fmt.Printf("headlines refreshed periodically: %q (several editions elapsed)\n", section(d, "headlines"))
		return nil
	}))

	// Manual: the archive loads when asked for.
	must(ctl.WithDocument(func(d *axml.Document) error {
		fmt.Printf("archive before request: %d call(s) pending\n", len(d.Calls())-2)
		return nil
	}))
	var archiveCall *axml.Node
	must(ctl.WithDocument(func(d *axml.Document) error {
		for _, c := range d.Calls() {
			if c.Label == "getArchive" {
				archiveCall = c
			}
		}
		return nil
	}))
	must(ctl.Activate(archiveCall))
	must(ctl.WithDocument(func(d *axml.Document) error {
		fmt.Printf("archive on demand: %q\n", section(d, "archive"))
		return nil
	}))

	// Lazy: a query about Paris weather invokes only the Paris call. The
	// signature matters: without it, Oslo's call would optimistically
	// stay relevant (it "could" return a Paris name), so the example
	// declares that getWeather only produces sky elements.
	sch, err := axml.ParseSchema(`
functions:
  getWeather = [in: data, out: sky]
elements:
  sky = data
`)
	if err != nil {
		log.Fatal(err)
	}
	q := axml.MustParseQuery(`/page/weather/city[name="Paris"]/sky/$S -> $S`)
	must(ctl.WithDocument(func(d *axml.Document) error {
		out, err := axml.Evaluate(d, q, reg, axml.Options{Strategy: axml.LazyNFQTyped, Schema: sch})
		if err != nil {
			return err
		}
		fmt.Printf("weather in Paris: %s (Oslo's call still pending: %v)\n",
			out.Results[0].Values["S"], stillPending(d, "getWeather"))
		return nil
	}))
}

func section(d *axml.Document, name string) string {
	return d.Root.Child(name).Text()
}

func stillPending(d *axml.Document, service string) bool {
	for _, c := range d.Calls() {
		if c.Label == service {
			return true
		}
	}
	return false
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
